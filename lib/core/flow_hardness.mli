(** The machinery behind Theorem 8: flow cannot be minimized exactly.

    The paper's argument: on the instance [J1, J2] at time 0 and [J3] at
    time 1 (unit works, [power = speed³]), a boundary configuration has
    [J2] finish exactly at time 1; eliminating σ1 and σ3 from the energy
    equation, the completion equation [1/σ1 + 1/σ2 = 1] and the
    Theorem 1 relation [σ1³ = σ2³ + σ3³] leaves a degree-12 polynomial
    in σ2 whose Galois group GAP reports unsolvable — hence no
    closed-form algorithm using arithmetic and roots.

    GAP is not available here, so we reproduce every machine-checkable
    part with exact rational arithmetic: the elimination itself (the
    derived polynomial must equal the paper's, coefficient by
    coefficient), Sturm-certified root isolation, and agreement between
    the isolated root and the boundary configuration computed
    numerically by {!Flow}.  Unsolvability of the Galois group is cited,
    not recomputed.

    One measured correction, recorded in EXPERIMENTS.md: the boundary
    window for this instance is energies ≈(10.32, 11.54), not the
    paper's "(≈8.43, ≈11.54)" — at E = 9 the true optimum has
    [C2 ≈ 1.071 > 1] with strictly smaller flow (2.3613 vs 2.4948) than
    the boundary stationary point, which our tests certify by brute
    force.  The polynomial identity and the impossibility argument are
    unaffected: inside the true window the boundary equations govern
    the optimum and the same elimination applies at any energy. *)

val paper_polynomial : Qpoly.t
(** The degree-12 polynomial printed in the paper (energy budget 9):
    [2σ₂¹² − 12σ₂¹¹ + 6σ₂¹⁰ + 108σ₂⁹ − 159σ₂⁸ − 738σ₂⁷ + 2415σ₂⁶ −
    1026σ₂⁵ − 5940σ₂⁴ + 12150σ₂³ − 10449σ₂² + 4374σ₂ − 729]. *)

val derived_polynomial : energy:Rat.t -> Qpoly.t
(** Eliminate σ1 and σ3 symbolically for an arbitrary rational budget:
    with [σ1 = x/(x−1)] and [σ3³ = σ1³ − x³],
    [x⁶(1−(x−1)³)² − (E(x−1)² − x² − x²(x−1)²)³].  For [energy = 9] this
    equals {!paper_polynomial} up to a constant factor.
    @param energy exact rational energy budget of the boundary system. *)

val derived_via_resultant : energy:Rat.t -> Qpoly.t
(** The same elimination done by textbook elimination theory instead of
    substitution: treat the optimality system as polynomials in the
    tower Q[σ2][σ1][σ3] and take two Sylvester resultants
    (first eliminating σ3 between the energy and Theorem 1 equations,
    then σ1 against the completion equation).  Resultants may carry
    extraneous factors, so the guarantee — checked in the tests — is
    that {!derived_polynomial} {e divides} this one. *)

val proportional : Qpoly.t -> Qpoly.t -> bool
(** Equality up to a nonzero rational factor. *)

val boundary_roots : energy:float -> float list
(** Sturm-certified real roots of the derived polynomial inside the
    feasible range [σ2 ∈ (1, 2)]: below 1 the completion equation
    [1/σ1 + 1/σ2 = 1] would force [σ1 <= 0], and at or above 2 it
    would force [σ1 <= σ2], violating the Theorem 1 ordering
    [σ1 > σ2] that the elimination assumed.  Ascending, isolated to
    the default Sturm refinement width.
    @param energy budget at which the boundary system is solved; the
    float is converted to an exact rational before elimination, so the
    certification is exact for the converted value. *)

val sigma2_numeric : energy:float -> float
(** σ2 of the flow-optimal schedule at the given budget (computed by
    {!Flow.solve_budget} on the Theorem 8 instance).  Inside
    {!measured_window} this agrees with the Sturm-certified root of
    {!boundary_roots} to solver precision — the cross-check the tests
    pin.
    @param energy energy budget, [> 0].
    @raise Invalid_argument when [energy <= 0] (from the solver). *)

val measured_window : ?tol:float -> unit -> float * float
(** The energy interval on which the optimum of the Theorem 8 instance
    has the boundary configuration ([C2 = 1]), located by bisection on
    the solver's classification.  Agrees with {!analytic_window} to
    [tol] — the measured correction to the paper's ≈8.43 lower end.
    @param tol bisection interval width at which the endpoint search
    stops (default [1e-9]). *)

val analytic_window : unit -> float * float
(** Closed forms for the window endpoints:
    lower = [(3^⅔+2^⅔+1)(3^{-⅓}+2^{-⅓})²] ≈ 10.3218 (the all-busy
    configuration stops being consistent), upper =
    [(2+2^⅔)(1+2^{-⅓})²] ≈ 11.5422 (the gap configuration takes over —
    matching the paper's ≈11.54). *)
