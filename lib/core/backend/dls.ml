(* Domain-local scratch slot (OCaml >= 5).  Each domain owns a private
   arena: Par pool workers reuse their buffers across every item they
   evaluate without synchronization, and a worker can never observe
   (or clobber) a sibling's in-flight scratch. *)

type 'a slot = 'a Domain.DLS.key

let make (init : unit -> 'a) : 'a slot = Domain.DLS.new_key init
let get (s : 'a slot) = Domain.DLS.get s
