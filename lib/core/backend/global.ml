(* Global scratch slot (OCaml < 5).  Without domains execution is
   sequential, so one lazily-created arena has the same visibility
   semantics as the domain-local backend. *)

type 'a slot = { init : unit -> 'a; mutable v : 'a option }

let make (init : unit -> 'a) : 'a slot = { init; v = None }

let get (s : 'a slot) =
  match s.v with
  | Some v -> v
  | None ->
    let v = s.init () in
    s.v <- Some v;
    v
