(** Per-domain scratch arenas for the kernel hot paths.

    Every root-find evaluation inside {!Flow.solve_budget} rebuilds a
    run stack, and every {!Incmerge} pass rebuilds a block stack; with
    per-call allocation those stacks dominate the allocation profile
    of a Pareto sweep or a serve batch.  This module keeps one arena
    of growable buffers {e per domain} — [Domain.DLS] on OCaml 5, a
    lazily created global on 4.14 where execution is sequential (the
    [Scratch_slot] copy rule in [lib/core/dune], mirroring
    [lib/fault]) — so warm kernel calls reuse storage and allocate
    nothing proportional to the instance.

    {2 Ownership and validity}

    A buffer returned by {!floats}, {!ints} or {!block_soa} is valid
    {e until the next kernel call on the same domain and slot}.
    Kernels must therefore:

    - never return scratch-backed storage through a public API
      (results are materialized into fresh values at the boundary);
    - use disjoint slot ranges when they can be live simultaneously.

    Slot conventions (documented here, asserted nowhere): slots 0–7
    belong to {!Incmerge}, 8–15 to {!Frontier}'s build pass, 16–23 to
    {!Flow}.  [Frontier.build] calls into [Incmerge] while its own
    slots are live, which the disjoint ranges make safe.

    Determinism: arenas affect only {e where} intermediates live,
    never their values, so results are independent of which domain
    (hence which arena) evaluates a call — the {!Par} jobs-invariance
    contract is preserved, and the [kernel:*] fuzz properties check it
    bitwise against the boxed reference implementation
    ({!Kernel_ref}). *)

type t
(** One domain's arena.  Obtain with {!get}; never share across
    domains (the accessor already hands each domain its own). *)

val get : unit -> t
(** The calling domain's arena, created on first use.  O(1) after
    creation: a single domain-local load on OCaml 5. *)

val floats : t -> slot:int -> int -> floatarray
(** [floats t ~slot n] is a float buffer of length [>= n] for [slot].
    Contents are unspecified (previous users of the slot leak
    through); the caller must write before reading.
    @param slot buffer index in [0 .. 23]; see the slot conventions.
    @param n minimum length; the buffer doubles on growth.
    @raise Invalid_argument when [slot] is outside [0 .. 23]. *)

val ints : t -> slot:int -> int -> int array
(** Same contract as {!floats} for an int buffer. *)

val block_soa : t -> slot:int -> int -> Block.Soa.t
(** [block_soa t ~slot n] is an empty ([len = 0]) struct-of-arrays
    block store with capacity [>= n].  Unlike {!floats} this resets
    the store, since a block stack is always rebuilt from scratch.
    @param slot store index in [0 .. 3].
    @raise Invalid_argument when [slot] is outside [0 .. 3]. *)

val harmonic : t -> alpha:float -> n:int -> floatarray
(** [harmonic t ~alpha ~n] is the cached table [H] with
    [H.(l) = sum_{t=1..l} t^(-1/alpha)] valid for indices [0 .. n] —
    the free-run duration table of {!Flow}.  Cached per domain keyed
    on [alpha] and extended in place when [n] grows; because the
    recurrence is deterministic, the cached prefix is bitwise
    identical to a from-scratch rebuild.  Read-only: callers must not
    write to the returned buffer (it is shared by every kernel call on
    the domain).
    @param alpha power exponent, [> 1] (not validated here — callers
    validate instances first).
    @param n largest index needed, [>= 0]. *)

val flow_tables : t -> alpha:float -> n:int -> floatarray * floatarray * floatarray
(** [flow_tables t ~alpha ~n] is [(h, hp, pw)]: the {!harmonic} table
    [h] plus its prefix sums [hp.(l) = sum_{i=1..l} h.(i)] and the
    power sums [pw.(l) = sum_{t=1..l} t^(1 - 1/alpha)], all valid for
    indices [0 .. n] and cached under the same [(alpha, n)] key.  With
    these, a free (unpinned) run of any length contributes to total
    flow and total energy in O(1) — the {!Flow} evaluation path walks
    only pinned jobs.  Same sharing and read-only contract as
    {!harmonic}.
    @param alpha power exponent, [> 1].
    @param n largest index needed, [>= 0]. *)
