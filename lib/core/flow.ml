let c_runs = Obs.counter "flow.runs_formed"
let c_run_merges = Obs.counter "flow.run_merges"

type run = { first : int; last : int; pinned : bool; end_speed : float }

type solution = {
  last_speed : float;
  runs : run list;
  speeds : float array;
  completions : float array;
  flow : float;
  energy : float;
}

let tol = 1e-12

let empty_solution s =
  { last_speed = s; runs = []; speeds = [||]; completions = [||]; flow = 0.0; energy = 0.0 }

let validate ~alpha inst =
  if alpha <= 1.0 then invalid_arg "Flow: need alpha > 1";
  if not (Instance.is_equal_work inst) then
    invalid_arg "Flow: Theorem 1 structure requires equal-work jobs"

(* Evaluation environment for one solver call: the instance's releases
   (plus their prefix sums) and the cached power tables unpacked into
   unboxed arrays, plus the scratch run stack (see scratch.mli, Flow
   owns slots 16..23).  Root finders evaluate the configuration dozens
   of times per solve; with the environment prepared once, an
   evaluation allocates only its closures — nothing proportional to
   the instance.

   The evaluation path works throughout with alpha-th powers of
   speeds: a run's Theorem 1 job speeds are sigma_k = (e^a + j s^a)^(1/a)
   (j jobs after k, e the run's end speed), so storing e^a alongside e
   makes the merge test power-free, an energy term one power
   (sigma^(a-1) = u^(1-1/a) for u = e^a + j s^a) and a duration term
   one power (w/sigma = w u^(-1/a)).  Free (unpinned) runs have e = s,
   where the per-length power sums are cached (Scratch.flow_tables):
   their total energy and total flow are O(1) lookups, and only pinned
   jobs are walked at all.  Kernel_ref mirrors this arithmetic
   operation for operation on boxed storage — the [kernel:*] fuzz
   properties compare the two bitwise — while Kernel_ref.Legacy
   preserves the pre-scratch algorithm for tolerance comparison and
   the before/after benchmark. *)
type env = {
  alpha : float;
  inv_a : float;  (* 1.0 /. alpha *)
  n : int;
  w : float;  (* the common work *)
  rel : floatarray;  (* releases, rel.(0 .. n-1) *)
  rel_sum : floatarray;  (* prefix sums: rel_sum.(i) = sum rel.(0 .. i-1) *)
  h : floatarray;  (* free-run durations: length-l free run takes (w/s) h.(l) *)
  hp : floatarray;  (* prefix sums of h, for O(1) free-run flow *)
  pw : floatarray;  (* pw.(l) = sum_{t=1..l} t^(1-1/a), for O(1) free-run energy *)
  r_first : int array;  (* run stack, r_*.(0 .. top-1) *)
  r_last : int array;
  r_pinned : int array;  (* 0/1 *)
  r_end : floatarray;  (* run end speeds e *)
  r_end_a : floatarray;  (* e ** alpha, the form every evaluation consumes *)
}

let make_env ~alpha inst =
  let n = Instance.n inst in
  let scr = Scratch.get () in
  let rel = Scratch.floats scr ~slot:17 n in
  let rel_sum = Scratch.floats scr ~slot:19 (n + 1) in
  Float.Array.unsafe_set rel_sum 0 0.0;
  for i = 0 to n - 1 do
    let r = (Instance.job inst i).Job.release in
    Float.Array.unsafe_set rel i r;
    Float.Array.unsafe_set rel_sum (i + 1) (Float.Array.unsafe_get rel_sum i +. r)
  done;
  let h, hp, pw = Scratch.flow_tables scr ~alpha ~n in
  {
    alpha;
    inv_a = 1.0 /. alpha;
    n;
    w = (Instance.job inst 0).Job.work;
    rel;
    rel_sum;
    h;
    hp;
    pw;
    r_first = Scratch.ints scr ~slot:16 n;
    r_last = Scratch.ints scr ~slot:17 n;
    r_pinned = Scratch.ints scr ~slot:18 n;
    r_end = Scratch.floats scr ~slot:16 n;
    r_end_a = Scratch.floats scr ~slot:18 n;
  }

(* flat all-float accumulators: field updates do not box, unlike
   [float ref], so evaluation loops allocate nothing per element *)
type acc2 = { mutable s0 : float; mutable s1 : float }

(* the Theorem 1-consistent run structure for a fixed last speed [s]:
   a forward pass with merging (analogous to IncMerge) into the
   scratch run stack; returns the stack height.  Each job starts its
   own run; a run whose relaxed completion passes the next release is
   pinned to it (a nested root find); a pinned run whose end speed
   exceeds the Theorem 1 upper bound merges with its successor. *)
let merge_pass env s =
  if s <= 0.0 || not (Float.is_finite s) then invalid_arg "Flow: last speed must be positive";
  (* one deadline/injection poll per configuration evaluation: even a
     solve whose analytic bracket nails the root exactly (so no root
     finder ever iterates) observes guard deadlines *)
  Fault.tick ();
  let { alpha; inv_a; n; w; rel; h; r_first; r_last; r_pinned; r_end; r_end_a; _ } = env in
  let sa = s ** alpha in
  (* pinned end speed (and its alpha-th power): the x >= s at which
     the run exactly fills its release window *)
  let pinned_end ~len ~window =
    if window <= tol then (Float.infinity, Float.infinity)
    else if len = 1 then begin
      (* a single job's window equation w/x = window is closed-form *)
      if w /. s <= window then (s, sa)
      else begin
        let x = w /. window in
        (x, x ** alpha)
      end
    end
    else begin
      (* dur x = sum_t w (x^a + t s^a)^(-1/a) is decreasing in x, and
         its derivative reuses every power of the value:
         dur' = -(x^a / x) sum_t term_t / u_t.  One fused evaluation
         costs what a plain one does, so safeguarded Newton beats
         derivative-free bracketing decisively here. *)
      let f_df x =
        let xa = x ** alpha in
        let a = { s0 = 0.0; s1 = 0.0 } in
        for t = 0 to len - 1 do
          let u = xa +. (float_of_int t *. sa) in
          let term = w /. (u ** inv_a) in
          a.s0 <- a.s0 +. term;
          a.s1 <- a.s1 +. (term /. u)
        done;
        (a.s0 -. window, -.(xa /. x) *. a.s1)
      in
      let fs, _ = f_df s in
      if fs <= 0.0 then (s, sa)
      else begin
        (* dur x <= len w / x, so x0 = len w / window sits at or above
           the root: a tight one-sided guess, with the doubled value as
           the safeguard bracket's far end *)
        let x0 = Float.max (2.0 *. s) (float_of_int len *. w /. window) in
        let x = Rootfind.newton_bracketed ~f_df ~lo:s ~hi:(2.0 *. x0) ~x0 () in
        (x, x ** alpha)
      end
    end
  in
  (* the run being built, in unboxed locals *)
  let cur_first = ref 0 and cur_last = ref 0 in
  let cur_pinned = ref false in
  let cur = { s0 = s; s1 = sa } (* end speed, end speed ** alpha *) in
  let make_run first last =
    cur_first := first;
    cur_last := last;
    if last = n - 1 then begin
      cur_pinned := false;
      cur.s0 <- s;
      cur.s1 <- sa
    end
    else begin
      let len = last - first + 1 in
      let window = Float.Array.unsafe_get rel (last + 1) -. Float.Array.unsafe_get rel first in
      if w /. s *. Float.Array.unsafe_get h len < window -. tol then begin
        cur_pinned := false;
        cur.s0 <- s;
        cur.s1 <- sa
      end
      else begin
        cur_pinned := true;
        let e, ea = pinned_end ~len ~window in
        cur.s0 <- e;
        cur.s1 <- ea
      end
    end
  in
  let top = ref 0 and merges = ref 0 in
  for i = 0 to n - 1 do
    make_run i i;
    let merging = ref true in
    while !merging do
      if !top > 0 && r_pinned.(!top - 1) = 1 then begin
        (* alpha-th power of the current run's first-job speed under
           its own end speed; infinities propagate as the comparison
           needs (an infinite predecessor always merges, an infinite
           current run never forces one) *)
        let first_a = cur.s1 +. (float_of_int (!cur_last - !cur_first) *. sa) in
        if Float.Array.unsafe_get r_end_a (!top - 1) > first_a +. sa +. (1e-9 *. sa) then begin
          incr merges;
          decr top;
          make_run r_first.(!top) !cur_last
        end
        else merging := false
      end
      else merging := false
    done;
    r_first.(!top) <- !cur_first;
    r_last.(!top) <- !cur_last;
    r_pinned.(!top) <- (if !cur_pinned then 1 else 0);
    Float.Array.unsafe_set r_end !top cur.s0;
    Float.Array.unsafe_set r_end_a !top cur.s1;
    incr top
  done;
  Obs.add c_run_merges !merges;
  Obs.add c_runs !top;
  !top

(* energy of the configuration at [s], without materializing per-job
   arrays — the root-find evaluation path of [solve_budget].  Pinned
   runs cost one power per job; free runs are one cached lookup. *)
let eval_energy env s =
  let top = merge_pass env s in
  let { alpha; inv_a; w; pw; r_first; r_last; r_pinned; r_end_a; _ } = env in
  let sa = s ** alpha in
  let am1_a = 1.0 -. inv_a in
  let sam1 = s ** (alpha -. 1.0) in
  let a = { s0 = 0.0; s1 = 0.0 } in
  for ri = 0 to top - 1 do
    let first = r_first.(ri) and last = r_last.(ri) in
    if r_pinned.(ri) = 1 then begin
      let ea = Float.Array.unsafe_get r_end_a ri in
      for k = first to last do
        let u = ea +. (float_of_int (last - k) *. sa) in
        a.s0 <- a.s0 +. (w *. (u ** am1_a))
      done
    end
    else a.s0 <- a.s0 +. (w *. sam1 *. Float.Array.unsafe_get pw (last - first + 1))
  done;
  a.s0

(* total flow at [s], likewise array-free — the evaluation path of
   [solve_flow_target] *)
let eval_flow env s =
  let top = merge_pass env s in
  let { alpha; inv_a; w; rel; rel_sum; h; hp; r_first; r_last; r_pinned; r_end_a; _ } = env in
  let sa = s ** alpha in
  let w_over_s = w /. s in
  let a = { s0 = 0.0; s1 = 0.0 } (* total flow, running completion *) in
  for ri = 0 to top - 1 do
    let first = r_first.(ri) and last = r_last.(ri) in
    if r_pinned.(ri) = 1 then begin
      let ea = Float.Array.unsafe_get r_end_a ri in
      a.s1 <- Float.Array.unsafe_get rel first;
      for k = first to last do
        let u = ea +. (float_of_int (last - k) *. sa) in
        a.s1 <- a.s1 +. (w /. (u ** inv_a));
        a.s0 <- a.s0 +. (a.s1 -. Float.Array.unsafe_get rel k)
      done
    end
    else begin
      (* free run: completions rel_first + (w/s)(h(len) - h(last-k)),
         summed in closed form over the run *)
      let len = last - first + 1 in
      a.s0 <-
        a.s0
        +. (float_of_int len *. Float.Array.unsafe_get rel first)
        +. (w_over_s
           *. ((float_of_int len *. Float.Array.unsafe_get h len)
              -. Float.Array.unsafe_get hp (len - 1)))
        -. (Float.Array.unsafe_get rel_sum (last + 1) -. Float.Array.unsafe_get rel_sum first)
    end
  done;
  a.s0

(* the full solution at [s]: per-job speeds/completions and the boxed
   run list are materialized exactly once per solver call, at the root *)
let solve_full env s =
  let top = merge_pass env s in
  let { alpha; inv_a; n; w; rel; r_first; r_last; r_pinned; r_end; r_end_a; _ } = env in
  let sa = s ** alpha in
  let speeds = Array.make n 0.0 in
  let completions = Array.make n 0.0 in
  for ri = 0 to top - 1 do
    let first = r_first.(ri) and last = r_last.(ri) in
    let xa = Float.Array.unsafe_get r_end_a ri in
    let t = { s0 = Float.Array.unsafe_get rel first; s1 = 0.0 } in
    for k = first to last do
      let sigma = (xa +. (float_of_int (last - k) *. sa)) ** inv_a in
      speeds.(k) <- sigma;
      t.s0 <- t.s0 +. (w /. sigma);
      completions.(k) <- t.s0
    done
  done;
  let flow = ref 0.0 and energy = ref 0.0 in
  for k = 0 to n - 1 do
    flow := !flow +. (completions.(k) -. Float.Array.get rel k);
    energy := !energy +. (w *. (speeds.(k) ** (alpha -. 1.0)))
  done;
  let runs =
    List.init top (fun i ->
        {
          first = r_first.(i);
          last = r_last.(i);
          pinned = r_pinned.(i) = 1;
          end_speed = Float.Array.get r_end i;
        })
  in
  { last_speed = s; runs; speeds; completions; flow = !flow; energy = !energy }

let solve_for_last_speed ~alpha inst s =
  validate ~alpha inst;
  if s <= 0.0 || not (Float.is_finite s) then invalid_arg "Flow: last speed must be positive";
  if Instance.n inst = 0 then empty_solution s else solve_full (make_env ~alpha inst) s

let solve_budget ?(eps = 1e-12) ?warm ~alpha ~energy inst =
  Obs.span "flow.solve_budget" @@ fun () ->
  Fault.enter "flow.solve_budget";
  if energy <= 0.0 then invalid_arg "Flow.solve_budget: energy must be positive";
  if Instance.n inst = 0 then empty_solution 0.0
  else begin
    validate ~alpha inst;
    let n = Instance.n inst in
    let env = make_env ~alpha inst in
    let g s = eval_energy env s -. energy in
    (* energy(s) is continuous and increasing with range (0, inf).  A
       warm start (the root for a nearby budget, e.g. the previous
       Pareto point) seeds a one-sided bracket that is usually a couple
       of evaluations wide.  Cold, every job runs at least at speed s,
       so energy(s) >= n w s^(a-1): solving that bound for the budget
       gives an analytic upper bracket endpoint, and halving walks the
       lower endpoint down in a step or two. *)
    let lo, glo, hi, ghi =
      match warm with
      | Some s0 when s0 > 0.0 && Float.is_finite s0 ->
        let g0 = g s0 in
        if g0 <= 0.0 then begin
          (* start a few percent out — adjacent sweep budgets move the
             root very little — and double only if that misses *)
          let hi = ref (s0 *. 1.05) in
          let ghi = ref (g !hi) in
          while !ghi < 0.0 && !hi < 1e300 do
            Fault.tick ();
            hi := !hi *. 2.0;
            ghi := g !hi
          done;
          (s0, g0, !hi, !ghi)
        end
        else begin
          let lo = ref (s0 /. 1.05) in
          let glo = ref (g !lo) in
          while !glo > 0.0 && !lo > 1e-300 do
            Fault.tick ();
            lo := !lo /. 2.0;
            glo := g !lo
          done;
          (!lo, !glo, s0, g0)
        end
      | _ ->
        let s0 = (energy /. (float_of_int n *. env.w)) ** (1.0 /. (alpha -. 1.0)) in
        if s0 > 0.0 && Float.is_finite s0 then begin
          let g0 = g s0 in
          if g0 >= 0.0 then begin
            let lo = ref (0.5 *. s0) in
            let glo = ref (g !lo) in
            while !glo > 0.0 && !lo > 1e-300 do
              Fault.tick ();
              lo := 0.5 *. !lo;
              glo := g !lo
            done;
            (!lo, !glo, s0, g0)
          end
          else begin
            (* only reachable when rounding puts s0 a hair under the
               root (e.g. a single free job, where the bound is tight) *)
            let hi = ref (2.0 *. s0) in
            let ghi = ref (g !hi) in
            while !ghi < 0.0 && !hi < 1e300 do
              Fault.tick ();
              hi := !hi *. 2.0;
              ghi := g !hi
            done;
            (s0, g0, !hi, !ghi)
          end
        end
        else begin
          (* degenerate budgets (under/overflowing the bound): fall
             back to bracketing from fixed seeds *)
          let lo = ref 1e-6 in
          let glo = ref (g !lo) in
          while !glo > 0.0 && !lo > 1e-300 do
            Fault.tick ();
            lo := !lo /. 16.0;
            glo := g !lo
          done;
          let hi = ref 1.0 in
          let ghi = ref (g !hi) in
          while !ghi < 0.0 && !hi < 1e300 do
            Fault.tick ();
            hi := !hi *. 2.0;
            ghi := g !hi
          done;
          (!lo, !glo, !hi, !ghi)
        end
    in
    let s = Rootfind.brent ~f:g ~lo ~hi ~flo:glo ~fhi:ghi ~eps ~max_iter:300 () in
    solve_full env s
  end

let solve_flow_target ?(eps = 1e-12) ~alpha ~flow inst =
  Obs.span "flow.solve_flow_target" @@ fun () ->
  if flow <= 0.0 then invalid_arg "Flow.solve_flow_target: flow target must be positive";
  if Instance.n inst = 0 then empty_solution 0.0
  else begin
    validate ~alpha inst;
    let env = make_env ~alpha inst in
    let g s = eval_flow env s -. flow in
    (* flow(s) is decreasing: large s -> tiny flows *)
    let lo = ref 1e-6 in
    let glo = ref (g !lo) in
    while !glo < 0.0 && !lo > 1e-300 do
      Fault.tick ();
      lo := !lo /. 16.0;
      glo := g !lo
    done;
    let hi = ref 1.0 in
    let ghi = ref (g !hi) in
    while !ghi > 0.0 && !hi < 1e300 do
      Fault.tick ();
      hi := !hi *. 2.0;
      ghi := g !hi
    done;
    let s = Rootfind.brent ~f:g ~lo:!lo ~hi:!hi ~flo:!glo ~fhi:!ghi ~eps ~max_iter:300 () in
    solve_full env s
  end

let schedule inst sol =
  let n = Instance.n inst in
  let entries = ref [] in
  for k = n - 1 downto 0 do
    let j = Instance.job inst k in
    let start = sol.completions.(k) -. (j.Job.work /. sol.speeds.(k)) in
    entries := { Schedule.job = j; proc = 0; start; speed = sol.speeds.(k) } :: !entries
  done;
  Schedule.of_entries !entries

let theorem1_holds ?(tol = 1e-6) ~alpha inst sol =
  let n = Instance.n inst in
  let s = sol.last_speed in
  let sa = s ** alpha in
  let ok = ref true in
  for i = 0 to n - 2 do
    let r_next = (Instance.job inst (i + 1)).Job.release in
    let ci = sol.completions.(i) in
    let si_a = sol.speeds.(i) ** alpha in
    let upper = (sol.speeds.(i + 1) ** alpha) +. sa in
    let slack = tol *. (1.0 +. si_a) in
    let case1 = ci < r_next -. tol && Float.abs (sol.speeds.(i) -. s) <= tol *. (1.0 +. s) in
    let case2 = ci > r_next +. tol && Float.abs (si_a -. upper) <= slack in
    let case3 =
      Float.abs (ci -. r_next) <= tol *. (1.0 +. r_next)
      && si_a >= sa -. slack
      && si_a <= upper +. slack
    in
    if not (case1 || case2 || case3) then ok := false
  done;
  !ok
