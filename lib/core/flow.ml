let c_runs = Obs.counter "flow.runs_formed"
let c_run_merges = Obs.counter "flow.run_merges"

type run = { first : int; last : int; pinned : bool; end_speed : float }

type solution = {
  last_speed : float;
  runs : run list;
  speeds : float array;
  completions : float array;
  flow : float;
  energy : float;
}

let tol = 1e-12

let empty_solution s =
  { last_speed = s; runs = []; speeds = [||]; completions = [||]; flow = 0.0; energy = 0.0 }

let validate ~alpha inst =
  if alpha <= 1.0 then invalid_arg "Flow: need alpha > 1";
  if not (Instance.is_equal_work inst) then
    invalid_arg "Flow: Theorem 1 structure requires equal-work jobs"

(* harmonic-like partial sums: H.(l) = sum_{t=1..l} t^(-1/alpha), so a
   free run of length l takes (w/s) * H.(l) time.  Depends only on
   (alpha, n), so root finders build it once and share it across every
   evaluation of the same instance. *)
let harmonic ~alpha n =
  let h = Array.make (n + 1) 0.0 in
  for t = 1 to n do
    h.(t) <- h.(t - 1) +. (float_of_int t ** (-1.0 /. alpha))
  done;
  h

(* speed of job [k] inside a run ending at [last] with end speed [x]:
   sigma_k^a = x^a + (last - k) s^a  (Theorem 1, case 2 chained) *)
let job_speed ~alpha ~s x last k =
  ((x ** alpha) +. (float_of_int (last - k) *. (s ** alpha))) ** (1.0 /. alpha)

(* the Theorem 1-consistent configuration for a fixed last speed [s];
   assumes [inst] already validated and [h = harmonic ~alpha n] *)
let solve_with ~alpha ~h inst s =
  if s <= 0.0 || not (Float.is_finite s) then invalid_arg "Flow: last speed must be positive";
  let n = Instance.n inst in
  if n = 0 then empty_solution s
  else begin
    let w = (Instance.job inst 0).Job.work in
    let release i = (Instance.job inst i).Job.release in
    let sa = s ** alpha in
    let free_duration l = w /. s *. h.(l) in
    (* pinned end speed: the x >= s at which the run exactly fills its
       release window *)
    let pinned_end_speed ~len ~window =
      if window <= tol then Float.infinity
      else begin
        let dur x =
          let acc = ref 0.0 in
          for t = 0 to len - 1 do
            acc := !acc +. (w /. (((x ** alpha) +. (float_of_int t *. sa)) ** (1.0 /. alpha)))
          done;
          !acc
        in
        let f x = dur x -. window in
        if f s <= 0.0 then s
        else begin
          let hi = ref (Float.max (2.0 *. s) (2.0 *. float_of_int len *. w /. window)) in
          let i = ref 0 in
          while f !hi > 0.0 && !i < 200 do
            Fault.tick ();
            hi := !hi *. 2.0;
            incr i
          done;
          Rootfind.brent ~f ~lo:s ~hi:!hi ()
        end
      end
    in
    let make_run first last =
      let len = last - first + 1 in
      if last = n - 1 then { first; last; pinned = false; end_speed = s }
      else begin
        let window = release (last + 1) -. release first in
        if free_duration len < window -. tol then { first; last; pinned = false; end_speed = s }
        else { first; last; pinned = true; end_speed = pinned_end_speed ~len ~window }
      end
    in
    let first_speed r =
      if Float.is_finite r.end_speed then job_speed ~alpha ~s r.end_speed r.last r.first
      else Float.infinity
    in
    (* forward pass with merging: a pinned run whose end speed exceeds
       the Theorem 1 upper bound against its successor merges with it.
       The run stack is a preallocated array (at most n runs, top grows
       rightward) — this is the innermost structure of every root-find
       evaluation, so it must not allocate per push. *)
    let stack = Array.make n { first = 0; last = 0; pinned = false; end_speed = s } in
    let top = ref 0 in
    let merges = ref 0 in
    for i = 0 to n - 1 do
      let cur = ref (make_run i i) in
      let merging = ref true in
      while !merging do
        if !top > 0 then begin
          let prev = stack.(!top - 1) in
          if
            prev.pinned
            && (prev.end_speed ** alpha) > (first_speed !cur ** alpha) +. sa +. (1e-9 *. sa)
          then begin
            incr merges;
            decr top;
            cur := make_run prev.first !cur.last
          end
          else merging := false
        end
        else merging := false
      done;
      stack.(!top) <- !cur;
      incr top
    done;
    Obs.add c_run_merges !merges;
    Obs.add c_runs !top;
    (* materialize per-job speeds and completions *)
    let speeds = Array.make n 0.0 in
    let completions = Array.make n 0.0 in
    for ri = 0 to !top - 1 do
      let r = stack.(ri) in
      let t = ref (release r.first) in
      for k = r.first to r.last do
        let sigma = job_speed ~alpha ~s r.end_speed r.last k in
        speeds.(k) <- sigma;
        t := !t +. (w /. sigma);
        completions.(k) <- !t
      done
    done;
    let flow = ref 0.0 and energy = ref 0.0 in
    for k = 0 to n - 1 do
      flow := !flow +. (completions.(k) -. release k);
      energy := !energy +. (w *. (speeds.(k) ** (alpha -. 1.0)))
    done;
    let runs = List.init !top (fun i -> stack.(i)) in
    { last_speed = s; runs; speeds; completions; flow = !flow; energy = !energy }
  end

let solve_for_last_speed ~alpha inst s =
  validate ~alpha inst;
  solve_with ~alpha ~h:(harmonic ~alpha (Instance.n inst)) inst s

let solve_budget ?(eps = 1e-12) ?warm ~alpha ~energy inst =
  Obs.span "flow.solve_budget" @@ fun () ->
  Fault.enter "flow.solve_budget";
  if energy <= 0.0 then invalid_arg "Flow.solve_budget: energy must be positive";
  if Instance.n inst = 0 then empty_solution 0.0
  else begin
    validate ~alpha inst;
    let h = harmonic ~alpha (Instance.n inst) in
    let g s = (solve_with ~alpha ~h inst s).energy -. energy in
    (* energy(s) is continuous and increasing with range (0, inf).  A
       warm start (the root for a nearby budget, e.g. the previous
       Pareto point) seeds a one-sided bracket that is usually a couple
       of evaluations wide; without it we bracket from scratch. *)
    let lo, hi =
      match warm with
      | Some s0 when s0 > 0.0 && Float.is_finite s0 ->
        if g s0 <= 0.0 then begin
          (* start a few percent out — adjacent sweep budgets move the
             root very little — and double only if that misses *)
          let hi = ref (s0 *. 1.05) in
          while g !hi < 0.0 && !hi < 1e300 do
            Fault.tick ();
            hi := !hi *. 2.0
          done;
          (s0, !hi)
        end
        else begin
          let lo = ref (s0 /. 1.05) in
          while g !lo > 0.0 && !lo > 1e-300 do
            Fault.tick ();
            lo := !lo /. 2.0
          done;
          (!lo, s0)
        end
      | _ ->
        let lo = ref 1e-6 in
        while g !lo > 0.0 && !lo > 1e-300 do
          Fault.tick ();
          lo := !lo /. 16.0
        done;
        let hi = ref 1.0 in
        while g !hi < 0.0 && !hi < 1e300 do
          Fault.tick ();
          hi := !hi *. 2.0
        done;
        (!lo, !hi)
    in
    let s = Rootfind.brent ~f:g ~lo ~hi ~eps ~max_iter:300 () in
    solve_with ~alpha ~h inst s
  end

let solve_flow_target ?(eps = 1e-12) ~alpha ~flow inst =
  Obs.span "flow.solve_flow_target" @@ fun () ->
  if flow <= 0.0 then invalid_arg "Flow.solve_flow_target: flow target must be positive";
  if Instance.n inst = 0 then empty_solution 0.0
  else begin
    validate ~alpha inst;
    let h = harmonic ~alpha (Instance.n inst) in
    let g s = (solve_with ~alpha ~h inst s).flow -. flow in
    (* flow(s) is decreasing: large s -> tiny flows *)
    let lo = ref 1e-6 in
    while g !lo < 0.0 && !lo > 1e-300 do
      Fault.tick ();
      lo := !lo /. 16.0
    done;
    let hi = ref 1.0 in
    while g !hi > 0.0 && !hi < 1e300 do
      Fault.tick ();
      hi := !hi *. 2.0
    done;
    let s = Rootfind.brent ~f:g ~lo:!lo ~hi:!hi ~eps ~max_iter:300 () in
    solve_with ~alpha ~h inst s
  end

let schedule inst sol =
  let n = Instance.n inst in
  let entries = ref [] in
  for k = n - 1 downto 0 do
    let j = Instance.job inst k in
    let start = sol.completions.(k) -. (j.Job.work /. sol.speeds.(k)) in
    entries := { Schedule.job = j; proc = 0; start; speed = sol.speeds.(k) } :: !entries
  done;
  Schedule.of_entries !entries

let theorem1_holds ?(tol = 1e-6) ~alpha inst sol =
  let n = Instance.n inst in
  let s = sol.last_speed in
  let sa = s ** alpha in
  let ok = ref true in
  for i = 0 to n - 2 do
    let r_next = (Instance.job inst (i + 1)).Job.release in
    let ci = sol.completions.(i) in
    let si_a = sol.speeds.(i) ** alpha in
    let upper = (sol.speeds.(i + 1) ** alpha) +. sa in
    let slack = tol *. (1.0 +. si_a) in
    let case1 = ci < r_next -. tol && Float.abs (sol.speeds.(i) -. s) <= tol *. (1.0 +. s) in
    let case2 = ci > r_next +. tol && Float.abs (si_a -. upper) <= slack in
    let case3 =
      Float.abs (ci -. r_next) <= tol *. (1.0 +. r_next)
      && si_a >= sa -. slack
      && si_a <= upper +. slack
    in
    if not (case1 || case2 || case3) then ok := false
  done;
  !ok
