let eps = 1e-9

(* recompute the timeline for a list of blocks (possibly spilling past
   releases): each block starts at the later of its first release and the
   previous block's completion *)
let timeline blocks =
  let rec go cursor acc = function
    | [] -> List.rev acc
    | (b : Block.t) :: rest ->
      let b = { b with Block.start = Float.max b.Block.start cursor } in
      go (Block.finish b) (b :: acc) rest
  in
  go 0.0 [] blocks

let spent model blocks = List.fold_left (fun acc b -> acc +. Block.energy model b) 0.0 blocks

(* price the final block from the remaining budget, capped *)
let reprice_final model ~energy ~cap blocks =
  match List.rev blocks with
  | [] -> []
  | last :: prefix_rev ->
    let used = spent model (List.rev prefix_rev) in
    let remaining = energy -. used in
    let speed =
      if remaining <= 0.0 then Float.min cap last.Block.speed
      else Float.min cap (Power_model.speed_for_energy model ~work:last.Block.work ~energy:remaining)
    in
    timeline (List.rev ({ last with Block.speed } :: prefix_rev))

let clamp_pass model ~energy ~cap blocks =
  let clamped = List.map (fun (b : Block.t) -> { b with Block.speed = Float.min b.Block.speed cap }) blocks in
  reprice_final model ~energy ~cap clamped

(* latest block that (a) runs below cap, (b) is chained busily to the end
   of the schedule, and (c) can still be sped up before its completion
   hits the next block's first release *)
let find_candidate ~cap blocks =
  let arr = Array.of_list blocks in
  let n = Array.length arr in
  let rec chained j =
    (* blocks j..n-2 each complete exactly when the next starts *)
    j >= n - 1 || (Float.abs (Block.finish arr.(j) -. arr.(j + 1).Block.start) <= eps && chained (j + 1))
  in
  let rec search k =
    if k < 0 then None
    else begin
      let b = arr.(k) in
      if k < n - 1 && b.Block.speed < cap -. eps && chained k then begin
        let next_release = arr.(k + 1).Block.start in
        (* next block's start currently equals our finish; its own first
           release bounds how far it can move earlier *)
        ignore next_release;
        Some k
      end
      else search (k - 1)
    end
  in
  search (n - 2)

let release_bound_speed inst (b : Block.t) =
  (* speed at which the block finishes exactly at the release of the next
     job after it; +inf when the next job is released no later than the
     block's start *)
  let next = b.Block.last + 1 in
  if next >= Instance.n inst then Float.infinity
  else begin
    let r = (Instance.job inst next).Job.release in
    if r <= b.Block.start +. eps then Float.infinity else b.Block.work /. (r -. b.Block.start)
  end

let improve model ~energy ~cap inst blocks =
  let rec loop blocks iter =
    Fault.tick ();
    if iter <= 0 then blocks
    else begin
      let leftover = energy -. spent model blocks in
      if leftover <= eps *. (1.0 +. energy) then blocks
      else
        match find_candidate ~cap blocks with
        | None -> blocks
        | Some k ->
          let arr = Array.of_list blocks in
          let b = arr.(k) in
          let budget_speed =
            Power_model.speed_for_energy model ~work:b.Block.work ~energy:(Block.energy model b +. leftover)
          in
          let s' = Float.min (Float.min cap budget_speed) (release_bound_speed inst b) in
          if s' <= b.Block.speed +. eps then blocks
          else begin
            arr.(k) <- { b with Block.speed = s' };
            loop (timeline (Array.to_list arr)) (iter - 1)
          end
    end
  in
  loop blocks (4 * List.length blocks)

let capped_blocks model ~energy ~cap inst =
  Fault.enter "bounded_speed.solve";
  if cap <= 0.0 then invalid_arg "Bounded_speed: cap must be positive";
  let unbounded = Incmerge.blocks model ~energy inst in
  if List.for_all (fun b -> b.Block.speed <= cap +. eps) unbounded then unbounded
  else improve model ~energy ~cap inst (clamp_pass model ~energy ~cap unbounded)

let solve model ~energy ~cap inst =
  Schedule.of_entries (List.concat_map (Block.entries inst 0) (capped_blocks model ~energy ~cap inst))

let makespan model ~energy ~cap inst =
  match List.rev (capped_blocks model ~energy ~cap inst) with
  | [] -> 0.0
  | last :: _ -> Block.finish last

let cap_binds model ~energy ~cap inst =
  List.exists (fun b -> b.Block.speed > cap +. eps) (Incmerge.blocks model ~energy inst)
