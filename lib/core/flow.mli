(** Total flow for equal-work jobs on a uniprocessor — the setting of
    Pruhs, Uthaisombut and Woeginger [PUW04] that §4 of the paper builds
    on.

    Jobs run in release order (w.l.o.g. for equal work); in the optimal
    schedule each job has one speed, and Theorem 1 ties the speeds
    together through the busy-run structure: within a maximal busy run
    [σ_i^α = σ_(i+1)^α + σ_n^α]; a job followed by a gap runs at the
    last job's speed [σ_n]; a job finishing exactly at the next release
    is pinned between the two.

    The solver is parametrized by [s = σ_n].  For fixed [s] the
    configuration is unique and is found by a forward merge pass
    (analogous to IncMerge): each job starts its own run; a run whose
    relaxed completion passes the next release is pinned to it; a pinned
    run whose end speed exceeds the Theorem 1 upper bound merges with
    its successor.  Energy is strictly increasing in [s], so the laptop
    problem is a one-dimensional root find — this realizes the
    "arbitrarily good approximation" of [PUW04], and Theorem 8 shows the
    remaining gap to exactness is essential.

    Only [power = speed^α] models are supported (Theorem 1 is specific
    to them); use {!Flow_convex} for general convex power functions or
    unequal works. *)

type run = {
  first : int;
  last : int;
  pinned : bool;  (** completes exactly at the next job's release *)
  end_speed : float;  (** speed of the run's last job ([s] when not pinned) *)
}

type solution = {
  last_speed : float;  (** the parameter [s = σ_n] *)
  runs : run list;
  speeds : float array;  (** per job, release order *)
  completions : float array;
  flow : float;
  energy : float;
}

val solve_for_last_speed : alpha:float -> Instance.t -> float -> solution
(** The unique Theorem 1-consistent schedule with the given last-job
    speed.  @raise Invalid_argument unless the instance has equal work,
    [alpha > 1] and the speed is positive. *)

val solve_budget :
  ?eps:float -> ?warm:float -> alpha:float -> energy:float -> Instance.t -> solution
(** Laptop problem: minimize total flow within the energy budget.
    Root-finds on [s] until the energy matches to relative [eps]
    (default 1e-12).  [?warm] seeds the bracket with a known-good last
    speed — typically [last_speed] of the solution for a nearby budget,
    as when sweeping a Pareto curve — replacing the cold geometric
    bracket search with a one-sided expansion from [warm]; since
    energy is strictly increasing in [s] the result is the same root,
    found in fewer iterations.  A non-positive or non-finite [warm] is
    ignored. *)

val solve_flow_target : ?eps:float -> alpha:float -> flow:float -> Instance.t -> solution
(** Server problem: least energy whose optimal flow meets the target.
    @raise Invalid_argument when the target is below the infimum flow
    (sum of work-over-infinite-speed terms, i.e. not achievable). *)

val schedule : Instance.t -> solution -> Schedule.t

val theorem1_holds : ?tol:float -> alpha:float -> Instance.t -> solution -> bool
(** Checks every adjacent pair against the three Theorem 1 relations —
    the paper's characterization of flow-optimal schedules. *)
