(* Stack-based IncMerge.  Stack cells carry the block plus its energy so
   the final block's remaining budget is maintained in O(1) per merge.

   The block being built at the top of the stack is "open": its speed is
   window-determined while more jobs remain, and budget-determined once
   job n-1 has been absorbed.  An empty release window makes a transient
   infinite-speed block; the next push always merges it away, so infinite
   energies never reach the remaining-budget computation. *)

let c_merges = Obs.counter "incmerge.merge_rounds"
let c_blocks = Obs.counter "incmerge.blocks_emitted"
let c_jobs = Obs.counter "incmerge.jobs_processed"
let c_splits = Obs.counter "incmerge.block_splits"

type cell = { block : Block.t; energy : float; cum : float }
(* [cum] is the total energy of this cell and everything below it on the
   stack.  Using per-cell cumulative sums (instead of a mutable running
   total) avoids catastrophic cancellation when a transient very fast
   block with huge energy is pushed and popped. *)

(* a remaining budget at or below the model's energy floor behaves like
   speed 0: the block is "too slow", which forces a merge with its
   predecessor (freeing that block's window energy) *)
let final_speed model ~work ~remaining =
  if remaining <= 0.0 then 0.0
  else match Power_model.speed_for_energy_opt model ~work ~energy:remaining with
    | Some s -> s
    | None -> 0.0

let blocks model ~energy inst =
  let n = Instance.n inst in
  if n = 0 then []
  else begin
    if energy <= 0.0 then invalid_arg "Incmerge.blocks: energy budget must be positive";
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    (* stack of settled cells, top first *)
    let merges = ref 0 in
    let stack = ref [] in
    let e_sum () = match !stack with [] -> 0.0 | c :: _ -> c.cum in
    let push c = stack := { c with cum = e_sum () +. c.energy } :: !stack in
    let pop () =
      match !stack with
      | [] -> invalid_arg "Incmerge: pop on empty stack"
      | c :: rest ->
        stack := rest;
        c
    in
    (* speed/energy of a window block covering jobs [first..last] *)
    let window_cell first last w =
      let start = release first in
      let speed = Block.window_speed ~work:w ~start ~next_release:(release (last + 1)) in
      let block = { Block.first; last; work = w; start; speed } in
      (* a transient infinite-speed block (empty release window) always
         merges away on the next push, before any remaining-budget
         computation, so its stored energy can safely be 0 — storing
         [infinity] would corrupt the cumulative sums *)
      { block; energy = (if Float.is_finite speed then Block.energy model block else 0.0); cum = 0.0 }
    in
    let budget_cell first last w =
      let start = release first in
      let remaining = energy -. e_sum () in
      let speed = final_speed model ~work:w ~remaining in
      let block = { Block.first; last; work = w; start; speed } in
      { block; energy = Float.max remaining 0.0; cum = 0.0 }
    in
    for i = 0 to n - 1 do
      let is_final = i = n - 1 in
      let cell = ref (if is_final then budget_cell i i (work i) else window_cell i i (work i)) in
      let merging = ref true in
      while !merging do
        match !stack with
        | prev :: _ when !cell.block.Block.speed < prev.block.Block.speed ->
          incr merges;
          let prev = pop () in
          let first = prev.block.Block.first in
          let last = !cell.block.Block.last in
          let w = prev.block.Block.work +. !cell.block.Block.work in
          cell := if last = n - 1 then budget_cell first last w else window_cell first last w
        | _ -> merging := false
      done;
      push !cell
    done;
    (match !stack with
    | { block = { Block.speed; _ }; _ } :: _ when speed <= 0.0 ->
      invalid_arg "Incmerge.blocks: budget below the power model's energy floor"
    | _ -> ());
    Obs.add c_jobs n;
    Obs.add c_merges !merges;
    Obs.add c_blocks (List.length !stack);
    (* every block holding more than one job records the splits it
       absorbed: n jobs collapse into k blocks via n - k merges *)
    Obs.add c_splits (n - List.length !stack);
    List.rev_map (fun c -> c.block) !stack
  end

let energy_used model bs = List.fold_left (fun acc b -> acc +. Block.energy model b) 0.0 bs

let window_blocks inst ~upto =
  Obs.span "incmerge.window_blocks" @@ fun () ->
  let n = Instance.n inst in
  if upto >= n - 1 || upto < -1 then invalid_arg "Incmerge.window_blocks: upto out of range";
  let release i = (Instance.job inst i).Job.release in
  let work i = (Instance.job inst i).Job.work in
  let stack = ref [] in
  for i = 0 to upto do
    let cell = ref (let start = release i in
                    let w = work i in
                    { Block.first = i; last = i; work = w; start;
                      speed = Block.window_speed ~work:w ~start ~next_release:(release (i + 1)) })
    in
    let merging = ref true in
    while !merging do
      match !stack with
      | prev :: rest when !cell.Block.speed < prev.Block.speed ->
        stack := rest;
        let w = prev.Block.work +. !cell.Block.work in
        let start = prev.Block.start in
        cell :=
          { Block.first = prev.Block.first; last = !cell.Block.last; work = w; start;
            speed = Block.window_speed ~work:w ~start ~next_release:(release (!cell.Block.last + 1)) }
      | _ -> merging := false
    done;
    stack := !cell :: !stack
  done;
  List.rev !stack

let prefix_sums model bs =
  let m = Array.length bs in
  let cum_work = Array.make (m + 1) 0.0 in
  let cum_energy = Array.make (m + 1) 0.0 in
  for j = 0 to m - 1 do
    let b = bs.(j) in
    cum_work.(j + 1) <- cum_work.(j) +. b.Block.work;
    (* transient infinite-speed blocks carry infinite energy; they never
       survive into an emitted configuration, so counting them as 0 keeps
       the sums finite (same convention as the [blocks] stack cells) *)
    cum_energy.(j + 1) <-
      (cum_energy.(j) +. if Float.is_finite b.Block.speed then Block.energy model b else 0.0)
  done;
  (cum_work, cum_energy)

let solve model ~energy inst =
  Obs.span "incmerge.solve" @@ fun () ->
  let bs = blocks model ~energy inst in
  Schedule.of_entries (List.concat_map (Block.entries inst 0) bs)

let makespan model ~energy inst =
  Obs.span "incmerge.makespan" @@ fun () ->
  match List.rev (blocks model ~energy inst) with
  | [] -> 0.0
  | last :: _ -> Block.finish last
