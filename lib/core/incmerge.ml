(* Stack-based IncMerge on unboxed struct-of-arrays storage.

   The merge stack lives in the per-domain Scratch arena (slot
   conventions in scratch.mli): block fields in a Block.Soa, the
   per-cell cumulative energies in a parallel floatarray, and the cell
   being built in mutable float locals — a full pass allocates nothing
   proportional to the instance, and the boxed Block.t list is
   materialized once at the API boundary.

   The block being built at the top of the stack is "open": its speed
   is window-determined while more jobs remain, and budget-determined
   once job n-1 has been absorbed.  An empty release window makes a
   transient infinite-speed block; the next push always merges it
   away, so infinite energies never reach the remaining-budget
   computation.

   Per-cell cumulative sums (instead of a mutable running total) avoid
   catastrophic cancellation when a transient very fast block with
   huge energy is pushed and popped; they also make the arithmetic —
   hence every emitted block — bitwise identical to the historical
   boxed-cell implementation. *)

let c_merges = Obs.counter "incmerge.merge_rounds"
let c_blocks = Obs.counter "incmerge.blocks_emitted"
let c_jobs = Obs.counter "incmerge.jobs_processed"
let c_splits = Obs.counter "incmerge.block_splits"

(* a remaining budget at or below the model's energy floor behaves like
   speed 0: the block is "too slow", which forces a merge with its
   predecessor (freeing that block's window energy) *)
let final_speed model ~work ~remaining =
  if remaining <= 0.0 then 0.0
  else match Power_model.speed_for_energy_opt model ~work ~energy:remaining with
    | Some s -> s
    | None -> 0.0

let blocks model ~energy inst =
  let n = Instance.n inst in
  if n = 0 then []
  else begin
    if energy <= 0.0 then invalid_arg "Incmerge.blocks: energy budget must be positive";
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    let scr = Scratch.get () in
    (* settled cells: block fields in SoA slot 0, cumulative energies
       (this cell and everything below it) in float slot 0 *)
    let st = Scratch.block_soa scr ~slot:0 n in
    let cum = Scratch.floats scr ~slot:0 n in
    let top = ref 0 in
    let merges = ref 0 in
    let e_sum () = if !top = 0 then 0.0 else Float.Array.get cum (!top - 1) in
    (* the open cell, in unboxed locals *)
    let cur_first = ref 0 and cur_last = ref 0 in
    let cur_work = ref 0.0 and cur_start = ref 0.0 in
    let cur_speed = ref 0.0 and cur_energy = ref 0.0 in
    (* speed/energy of a window block covering jobs [first..last]; a
       transient infinite-speed block (empty release window) always
       merges away on the next push, before any remaining-budget
       computation, so its stored energy can safely be 0 — storing
       [infinity] would corrupt the cumulative sums *)
    let window_cell first last w =
      let start = release first in
      let speed = Block.window_speed ~work:w ~start ~next_release:(release (last + 1)) in
      cur_first := first;
      cur_last := last;
      cur_work := w;
      cur_start := start;
      cur_speed := speed;
      cur_energy :=
        (if Float.is_finite speed then Power_model.energy_run model ~work:w ~speed else 0.0)
    in
    let budget_cell first last w =
      let start = release first in
      let remaining = energy -. e_sum () in
      let speed = final_speed model ~work:w ~remaining in
      cur_first := first;
      cur_last := last;
      cur_work := w;
      cur_start := start;
      cur_speed := speed;
      cur_energy := Float.max remaining 0.0
    in
    for i = 0 to n - 1 do
      if i = n - 1 then budget_cell i i (work i) else window_cell i i (work i);
      let merging = ref true in
      while !merging do
        if !top > 0 && !cur_speed < Float.Array.get st.Block.Soa.speed (!top - 1) then begin
          incr merges;
          decr top;
          let first = st.Block.Soa.first.(!top) in
          let last = !cur_last in
          let w = Float.Array.get st.Block.Soa.work !top +. !cur_work in
          if last = n - 1 then budget_cell first last w else window_cell first last w
        end
        else merging := false
      done;
      Block.Soa.set st !top ~first:!cur_first ~last:!cur_last ~work:!cur_work ~start:!cur_start
        ~speed:!cur_speed;
      Float.Array.set cum !top (e_sum () +. !cur_energy);
      incr top
    done;
    st.Block.Soa.len <- !top;
    if Float.Array.get st.Block.Soa.speed (!top - 1) <= 0.0 then
      invalid_arg "Incmerge.blocks: budget below the power model's energy floor";
    Obs.add c_jobs n;
    Obs.add c_merges !merges;
    Obs.add c_blocks !top;
    (* every block holding more than one job records the splits it
       absorbed: n jobs collapse into k blocks via n - k merges *)
    Obs.add c_splits (n - !top);
    Block.Soa.to_list st
  end

let energy_used model bs = List.fold_left (fun acc b -> acc +. Block.energy model b) 0.0 bs

(* the merge phase with window-determined speeds only, into caller
   storage (capacity must cover upto + 1 rows) *)
let window_into inst ~upto (soa : Block.Soa.t) =
  let release i = (Instance.job inst i).Job.release in
  let work i = (Instance.job inst i).Job.work in
  let top = ref 0 in
  let cur_first = ref 0 and cur_last = ref 0 in
  let cur_work = ref 0.0 and cur_start = ref 0.0 and cur_speed = ref 0.0 in
  let window_cell first last w =
    let start = release first in
    cur_first := first;
    cur_last := last;
    cur_work := w;
    cur_start := start;
    cur_speed := Block.window_speed ~work:w ~start ~next_release:(release (last + 1))
  in
  for i = 0 to upto do
    window_cell i i (work i);
    let merging = ref true in
    while !merging do
      if !top > 0 && !cur_speed < Float.Array.get soa.Block.Soa.speed (!top - 1) then begin
        decr top;
        window_cell soa.Block.Soa.first.(!top) !cur_last
          (Float.Array.get soa.Block.Soa.work !top +. !cur_work)
      end
      else merging := false
    done;
    Block.Soa.set soa !top ~first:!cur_first ~last:!cur_last ~work:!cur_work ~start:!cur_start
      ~speed:!cur_speed;
    incr top
  done;
  soa.Block.Soa.len <- !top

let window_soa inst ~upto =
  Obs.span "incmerge.window_blocks" @@ fun () ->
  let n = Instance.n inst in
  if upto >= n - 1 || upto < -1 then invalid_arg "Incmerge.window_blocks: upto out of range";
  let soa = Scratch.block_soa (Scratch.get ()) ~slot:1 (Int.max (upto + 1) 1) in
  window_into inst ~upto soa;
  soa

let window_blocks inst ~upto = Block.Soa.to_list (window_soa inst ~upto)

let prefix_sums model bs =
  let m = Array.length bs in
  let cum_work = Array.make (m + 1) 0.0 in
  let cum_energy = Array.make (m + 1) 0.0 in
  for j = 0 to m - 1 do
    let b = bs.(j) in
    cum_work.(j + 1) <- cum_work.(j) +. b.Block.work;
    (* transient infinite-speed blocks carry infinite energy; they never
       survive into an emitted configuration, so counting them as 0 keeps
       the sums finite (same convention as the [blocks] stack cells) *)
    cum_energy.(j + 1) <-
      (cum_energy.(j) +. if Float.is_finite b.Block.speed then Block.energy model b else 0.0)
  done;
  (cum_work, cum_energy)

(* unboxed prefix sums over a SoA store: freshly allocated (they are
   retained by Frontier.t well past the scratch validity window) *)
let prefix_sums_fa model (soa : Block.Soa.t) =
  let m = soa.Block.Soa.len in
  let cum_work = Float.Array.make (m + 1) 0.0 in
  let cum_energy = Float.Array.make (m + 1) 0.0 in
  for j = 0 to m - 1 do
    let w = Float.Array.get soa.Block.Soa.work j in
    let speed = Float.Array.get soa.Block.Soa.speed j in
    Float.Array.set cum_work (j + 1) (Float.Array.get cum_work j +. w);
    Float.Array.set cum_energy (j + 1)
      (Float.Array.get cum_energy j
      +. if Float.is_finite speed then Power_model.energy_run model ~work:w ~speed else 0.0)
  done;
  (cum_work, cum_energy)

let solve model ~energy inst =
  Obs.span "incmerge.solve" @@ fun () ->
  let bs = blocks model ~energy inst in
  Schedule.of_entries (List.concat_map (Block.entries inst 0) bs)

let makespan model ~energy inst =
  Obs.span "incmerge.makespan" @@ fun () ->
  match List.rev (blocks model ~energy inst) with
  | [] -> 0.0
  | last :: _ -> Block.finish last
