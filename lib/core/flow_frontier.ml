let c_points = Obs.counter "flow_frontier.points_evaluated"

type point = { last_speed : float; energy : float; flow : float }

let sweep ~alpha inst ~s_lo ~s_hi ~n =
  if not (0.0 < s_lo && s_lo < s_hi) then invalid_arg "Flow_frontier.sweep: need 0 < s_lo < s_hi";
  if n < 2 then invalid_arg "Flow_frontier.sweep: need n >= 2";
  let ratio = (s_hi /. s_lo) ** (1.0 /. float_of_int (n - 1)) in
  Obs.span "flow_frontier.sweep" @@ fun () ->
  List.init n (fun i ->
      let s = s_lo *. (ratio ** float_of_int i) in
      let sol = Flow.solve_for_last_speed ~alpha inst s in
      Obs.incr c_points;
      { last_speed = s; energy = sol.Flow.energy; flow = sol.Flow.flow })

let flow_at ~alpha ~energy inst = (Flow.solve_budget ~alpha ~energy inst).Flow.flow

let curve ~alpha inst ~e_lo ~e_hi ~n =
  if n < 2 then invalid_arg "Flow_frontier.curve: need n >= 2";
  Obs.span "flow_frontier.curve" @@ fun () ->
  List.init n (fun i ->
      let e = e_lo +. ((e_hi -. e_lo) *. float_of_int i /. float_of_int (n - 1)) in
      Obs.incr c_points;
      (e, flow_at ~alpha ~energy:e inst))
