let c_points = Obs.counter "flow_frontier.points_evaluated"

type point = { last_speed : float; energy : float; flow : float }

(* Point evaluations are independent, so both sweeps fan out through
   Par.  Determinism: the speed/energy grids and the warm-start chain
   boundaries are fixed functions of (bounds, n) — never of [jobs] —
   so every jobs value computes bit-identical floats. *)

let grid_speed ~s_lo ~s_hi ~log_ratio ~n i =
  (* endpoints exactly: s_lo *. exp ((n-1) *. log_ratio) drifts in the
     last ulps, which matters to tests pinning the sweep range *)
  if i = 0 then s_lo
  else if i = n - 1 then s_hi
  else s_lo *. Float.exp (float_of_int i *. log_ratio)

let sweep ?jobs ~alpha inst ~s_lo ~s_hi ~n =
  if not (0.0 < s_lo && s_lo < s_hi) then invalid_arg "Flow_frontier.sweep: need 0 < s_lo < s_hi";
  if n < 2 then invalid_arg "Flow_frontier.sweep: need n >= 2";
  let log_ratio = Float.log (s_hi /. s_lo) /. float_of_int (n - 1) in
  Obs.span "flow_frontier.sweep" @@ fun () ->
  Array.to_list
    (Par.init ?jobs n (fun i ->
         let s = grid_speed ~s_lo ~s_hi ~log_ratio ~n i in
         let sol = Flow.solve_for_last_speed ~alpha inst s in
         Obs.incr c_points;
         { last_speed = s; energy = sol.Flow.energy; flow = sol.Flow.flow }))

let flow_at ~alpha ~energy inst = (Flow.solve_budget ~alpha ~energy inst).Flow.flow

(* Fixed chunk width for [curve], deliberately independent of [jobs]:
   each chunk starts cold and warm-starts point-to-point inside, so the
   sequence of brackets (hence every float) is the same whether one
   domain evaluates all chunks or eight evaluate two each. *)
let curve_chunk = 16

let curve ?jobs ~alpha inst ~e_lo ~e_hi ~n =
  if n < 2 then invalid_arg "Flow_frontier.curve: need n >= 2";
  let energy_at i = e_lo +. ((e_hi -. e_lo) *. float_of_int i /. float_of_int (n - 1)) in
  Obs.span "flow_frontier.curve" @@ fun () ->
  let nchunks = (n + curve_chunk - 1) / curve_chunk in
  let chunks =
    Par.init ?jobs nchunks (fun c ->
        let first = c * curve_chunk in
        let last = Int.min n (first + curve_chunk) - 1 in
        let out = Array.make (last - first + 1) (0.0, 0.0) in
        let warm = ref None in
        for i = first to last do
          let e = energy_at i in
          let sol = Flow.solve_budget ?warm:!warm ~alpha ~energy:e inst in
          warm := Some sol.Flow.last_speed;
          Obs.incr c_points;
          out.(i - first) <- (e, sol.Flow.flow)
        done;
        out)
  in
  List.concat_map Array.to_list (Array.to_list chunks)
