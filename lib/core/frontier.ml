let c_points = Obs.counter "frontier.points_evaluated"
let c_segments = Obs.counter "frontier.segments_emitted"

type segment = {
  prefix_len : int;
  e_fixed : float;
  last_first : int;
  last_work : float;
  last_start : float;
  e_min : float;
  e_max : float;
}

(* The frontier owns its data as struct-of-arrays: the shared window
   blocks (segment prefixes are slices b_*.(0..len-1)) and the
   segments in decreasing energy order.  Unboxed storage keeps the
   whole structure in a handful of flat arrays, so [segment_at] binary
   searches a floatarray directly and [makespan_at] touches no boxed
   block or segment on the query path; the public [segment] record is
   materialized only at API boundaries. *)
type t = {
  model : Power_model.t;
  inst : Instance.t;
  b_len : int;
  b_first : int array;
  b_last : int array;
  b_work : floatarray;
  b_start : floatarray;
  b_speed : floatarray;
  s_len : int;
  s_prefix_len : int array;
  s_last_first : int array;
  s_e_fixed : floatarray;
  s_last_work : floatarray;
  s_last_start : floatarray;
  s_e_min : floatarray;
  s_e_max : floatarray;
}

let block t i : Block.t =
  {
    Block.first = t.b_first.(i);
    last = t.b_last.(i);
    work = Float.Array.get t.b_work i;
    start = Float.Array.get t.b_start i;
    speed = Float.Array.get t.b_speed i;
  }

let seg t i =
  {
    prefix_len = t.s_prefix_len.(i);
    e_fixed = Float.Array.get t.s_e_fixed i;
    last_first = t.s_last_first.(i);
    last_work = Float.Array.get t.s_last_work i;
    last_start = Float.Array.get t.s_last_start i;
    e_min = Float.Array.get t.s_e_min i;
    e_max = Float.Array.get t.s_e_max i;
  }

let empty model inst =
  {
    model;
    inst;
    b_len = 0;
    b_first = [||];
    b_last = [||];
    b_work = Float.Array.create 0;
    b_start = Float.Array.create 0;
    b_speed = Float.Array.create 0;
    s_len = 0;
    s_prefix_len = [||];
    s_last_first = [||];
    s_e_fixed = Float.Array.create 0;
    s_last_work = Float.Array.create 0;
    s_last_start = Float.Array.create 0;
    s_e_min = Float.Array.create 0;
    s_e_max = Float.Array.create 0;
  }

let build model inst =
  Obs.span "frontier.build" @@ fun () ->
  let n = Instance.n inst in
  if n = 0 then empty model inst
  else begin
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    (* first configuration: window blocks for jobs 0..n-2 as the prefix,
       last job alone as the varying block; lowering the budget merges
       prefix blocks into the last block one at a time, so configuration
       [j] has prefix blocks 0..j-1.  Prefix sums price every split in
       O(1), making the whole enumeration O(m) instead of the O(m^2) of
       re-copying the prefix per emitted segment. *)
    let soa = Incmerge.window_soa inst ~upto:(n - 2) in
    let m = soa.Block.Soa.len in
    (* own what outlives this call: the scratch-backed window SoA is
       only valid until the next kernel call on this domain *)
    let b_first = Array.sub soa.Block.Soa.first 0 m in
    let b_last = Array.sub soa.Block.Soa.last 0 m in
    let b_work = Float.Array.sub soa.Block.Soa.work 0 m in
    let b_start = Float.Array.sub soa.Block.Soa.start 0 m in
    let b_speed = Float.Array.sub soa.Block.Soa.speed 0 m in
    let cum_work, cum_energy = Incmerge.prefix_sums_fa model soa in
    let w_last = work (n - 1) in
    (* segment construction in scratch (slots 8..): emission order
       j = m downto 0 is decreasing energy, the final order *)
    let scr = Scratch.get () in
    let t_prefix = Scratch.ints scr ~slot:8 (m + 1) in
    let t_first = Scratch.ints scr ~slot:9 (m + 1) in
    let t_e_fixed = Scratch.floats scr ~slot:8 (m + 1) in
    let t_work = Scratch.floats scr ~slot:9 (m + 1) in
    let t_start = Scratch.floats scr ~slot:10 (m + 1) in
    let t_e_min = Scratch.floats scr ~slot:11 (m + 1) in
    let t_e_max = Scratch.floats scr ~slot:12 (m + 1) in
    let ns = ref 0 in
    let e_max = ref Float.infinity in
    for j = m downto 0 do
      let last_first = if j = m then n - 1 else b_first.(j) in
      let last_start = if j = m then release (n - 1) else Float.Array.get b_start j in
      let last_work = Float.Array.get cum_work m -. Float.Array.get cum_work j +. w_last in
      let e_min =
        if j = 0 then 0.0
        else begin
          (* budget at which the last block slows to the prefix top's
             speed and the two merge; infinite-speed prefix blocks never
             yield a configuration of their own *)
          let prev_speed = Float.Array.get b_speed (j - 1) in
          if Float.is_finite prev_speed then
            Float.Array.get cum_energy j
            +. Power_model.energy_run model ~work:last_work ~speed:prev_speed
          else Float.infinity
        end
      in
      if e_min < !e_max then begin
        t_prefix.(!ns) <- j;
        t_first.(!ns) <- last_first;
        Float.Array.set t_e_fixed !ns (Float.Array.get cum_energy j);
        Float.Array.set t_work !ns last_work;
        Float.Array.set t_start !ns last_start;
        Float.Array.set t_e_min !ns e_min;
        Float.Array.set t_e_max !ns !e_max;
        incr ns;
        e_max := e_min
      end
    done;
    let ns = !ns in
    Obs.add c_segments ns;
    {
      model;
      inst;
      b_len = m;
      b_first;
      b_last;
      b_work;
      b_start;
      b_speed;
      s_len = ns;
      s_prefix_len = Array.sub t_prefix 0 ns;
      s_last_first = Array.sub t_first 0 ns;
      s_e_fixed = Float.Array.sub t_e_fixed 0 ns;
      s_last_work = Float.Array.sub t_work 0 ns;
      s_last_start = Float.Array.sub t_start 0 ns;
      s_e_min = Float.Array.sub t_e_min 0 ns;
      s_e_max = Float.Array.sub t_e_max 0 ns;
    }
  end

let segments t = List.init t.s_len (seg t)
let prefix t s = List.init s.prefix_len (block t)

let breakpoints t =
  segments t
  |> List.filter_map (fun s -> if s.e_min > 0.0 && Float.is_finite s.e_min then Some s.e_min else None)
  |> List.sort compare

(* [e_min] decreases along the segment arrays, so "first segment with
   e > e_min" is a monotone predicate: binary search directly on the
   unboxed e_min array, O(log m) per query with no boxing *)
let seg_index_at t e =
  let m = t.s_len in
  if m = 0 then invalid_arg "Frontier.segment_at: empty instance";
  if e <= 0.0 then invalid_arg "Frontier.segment_at: energy must be positive";
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if e > Float.Array.get t.s_e_min mid then hi := mid else lo := mid + 1
  done;
  !lo

let segment_at t e = seg t (seg_index_at t e)

let last_speed_at t i e =
  Power_model.speed_for_energy t.model
    ~work:(Float.Array.get t.s_last_work i)
    ~energy:(e -. Float.Array.get t.s_e_fixed i)

let makespan_at t e =
  Obs.incr c_points;
  let i = seg_index_at t e in
  Float.Array.get t.s_last_start i
  +. (Float.Array.get t.s_last_work i /. last_speed_at t i e)

let deriv1_at t e =
  let i = seg_index_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. Float.Array.get t.s_e_fixed i in
    -.beta *. (Float.Array.get t.s_last_work i ** (1.0 +. beta)) *. (x ** (-.beta -. 1.0))
  | None ->
    let h = 1e-6 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. makespan_at t (e -. h)) /. (2.0 *. h)

let deriv2_at t e =
  let i = seg_index_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. Float.Array.get t.s_e_fixed i in
    beta *. (beta +. 1.0) *. (Float.Array.get t.s_last_work i ** (1.0 +. beta)) *. (x ** (-.beta -. 2.0))
  | None ->
    let h = 1e-5 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. (2.0 *. makespan_at t e) +. makespan_at t (e -. h)) /. (h *. h)

let min_makespan_limit t = if t.s_len = 0 then 0.0 else Float.Array.get t.s_last_start 0

exception Infeasible_target of { target : float; infimum : float }

let energy_for_makespan t m =
  let nsegs = t.s_len in
  if nsegs = 0 then 0.0
  else begin
    if m <= min_makespan_limit t then
      raise (Infeasible_target { target = m; infimum = min_makespan_limit t });
    (* segments in decreasing energy order = increasing makespan order *)
    let rec go k =
      let last_start = Float.Array.get t.s_last_start k in
      let last_work = Float.Array.get t.s_last_work k in
      let e_fixed = Float.Array.get t.s_e_fixed k in
      if k = nsegs - 1 then begin
        let sigma = last_work /. (m -. last_start) in
        e_fixed +. Power_model.energy_run t.model ~work:last_work ~speed:sigma
      end
      else begin
        (* the segment covers makespans in [M(e_max), M(e_min)) *)
        let m_hi = last_start +. (last_work /. last_speed_at t k (Float.Array.get t.s_e_min k)) in
        if m < m_hi then begin
          let sigma = last_work /. (m -. last_start) in
          e_fixed +. Power_model.energy_run t.model ~work:last_work ~speed:sigma
        end
        else go (k + 1)
      end
    in
    go 0
  end

let schedule_at t e =
  if t.s_len = 0 then Schedule.of_entries []
  else begin
    let s = segment_at t e in
    let last_block =
      {
        Block.first = s.last_first;
        last = Instance.n t.inst - 1;
        work = s.last_work;
        start = s.last_start;
        speed = Power_model.speed_for_energy t.model ~work:s.last_work ~energy:(e -. s.e_fixed);
      }
    in
    Schedule.of_entries
      (List.concat_map (Block.entries t.inst 0) (prefix t s @ [ last_block ]))
  end

let min_energy_delay ?(delay_exponent = 1.0) t =
  if t.s_len = 0 then invalid_arg "Frontier.min_energy_delay: empty instance";
  if delay_exponent <= 0.0 then invalid_arg "Frontier.min_energy_delay: exponent must be positive";
  let objective ln_e =
    let e = Float.exp ln_e in
    ln_e +. (delay_exponent *. Float.log (makespan_at t e))
  in
  (* scale-aware bracket: around the total work at unit-ish speeds *)
  let w = Instance.total_work t.inst in
  let lo = Float.log (Float.max 1e-9 (w *. 1e-4)) and hi = Float.log (w *. 1e5) in
  (* coarse scan to localize the optimum, then golden section *)
  let grid = 256 in
  let best = ref (objective lo) and best_ln = ref lo in
  for i = 1 to grid do
    let ln_e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int grid) in
    let v = objective ln_e in
    if v < !best then begin
      best := v;
      best_ln := ln_e
    end
  done;
  let step = (hi -. lo) /. float_of_int grid in
  let ln_star =
    Convex.golden_min ~f:objective ~lo:(!best_ln -. (2.0 *. step)) ~hi:(!best_ln +. (2.0 *. step)) ()
  in
  let e_star = Float.exp ln_star in
  (e_star, e_star *. (makespan_at t e_star ** delay_exponent))

let sample ?jobs t ~lo ~hi ~n =
  Obs.span "frontier.sample" @@ fun () ->
  if n < 2 then invalid_arg "Frontier.sample: need at least two points";
  Array.to_list
    (Par.init ?jobs n (fun i ->
         let e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
         (e, makespan_at t e)))
