let c_points = Obs.counter "frontier.points_evaluated"
let c_segments = Obs.counter "frontier.segments_emitted"

type segment = {
  prefix_len : int;
  e_fixed : float;
  last_first : int;
  last_work : float;
  last_start : float;
  e_min : float;
  e_max : float;
}

type t = {
  model : Power_model.t;
  inst : Instance.t;
  blocks : Block.t array;  (* window blocks; segment prefixes are slices blocks.(0..len-1) *)
  segs : segment array;  (* decreasing energy *)
}

let build model inst =
  Obs.span "frontier.build" @@ fun () ->
  let n = Instance.n inst in
  if n = 0 then { model; inst; blocks = [||]; segs = [||] }
  else begin
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    (* first configuration: window blocks for jobs 0..n-2 as the prefix,
       last job alone as the varying block; lowering the budget merges
       prefix blocks into the last block one at a time, so configuration
       [j] has prefix blocks.(0..j-1).  Prefix sums price every split in
       O(1), making the whole enumeration O(m) instead of the O(m^2) of
       re-copying the prefix per emitted segment. *)
    let blocks = Array.of_list (Incmerge.window_blocks inst ~upto:(n - 2)) in
    let m = Array.length blocks in
    let cum_work, cum_energy = Incmerge.prefix_sums model blocks in
    let w_last = work (n - 1) in
    let segs = ref [] in
    (* built low-energy-first (j descending visits decreasing e_min) *)
    let e_max = ref Float.infinity in
    for j = m downto 0 do
      let last_first = if j = m then n - 1 else blocks.(j).Block.first in
      let last_start = if j = m then release (n - 1) else blocks.(j).Block.start in
      let last_work = cum_work.(m) -. cum_work.(j) +. w_last in
      let e_min =
        if j = 0 then 0.0
        else begin
          let prev = blocks.(j - 1) in
          (* budget at which the last block slows to the prefix top's
             speed and the two merge; infinite-speed prefix blocks never
             yield a configuration of their own *)
          if Float.is_finite prev.Block.speed then
            cum_energy.(j) +. Power_model.energy_run model ~work:last_work ~speed:prev.Block.speed
          else Float.infinity
        end
      in
      if e_min < !e_max then begin
        segs :=
          {
            prefix_len = j;
            e_fixed = cum_energy.(j);
            last_first;
            last_work;
            last_start;
            e_min;
            e_max = !e_max;
          }
          :: !segs;
        e_max := e_min
      end
    done;
    let segs = Array.of_list (List.rev !segs) in
    Obs.add c_segments (Array.length segs);
    { model; inst; blocks; segs }
  end

let segments t = Array.to_list t.segs
let prefix t s = Array.to_list (Array.sub t.blocks 0 s.prefix_len)

let breakpoints t =
  Array.to_list t.segs
  |> List.filter_map (fun s -> if s.e_min > 0.0 && Float.is_finite s.e_min then Some s.e_min else None)
  |> List.sort compare

let segment_at t e =
  let m = Array.length t.segs in
  if m = 0 then invalid_arg "Frontier.segment_at: empty instance";
  if e <= 0.0 then invalid_arg "Frontier.segment_at: energy must be positive";
  (* [e_min] decreases along [segs], so "first segment with e > e_min"
     is a monotone predicate: binary search, O(log m) per query *)
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if e > t.segs.(mid).e_min then hi := mid else lo := mid + 1
  done;
  t.segs.(!lo)

let last_speed t s e = Power_model.speed_for_energy t.model ~work:s.last_work ~energy:(e -. s.e_fixed)

let makespan_at t e =
  Obs.incr c_points;
  let s = segment_at t e in
  s.last_start +. (s.last_work /. last_speed t s e)

let deriv1_at t e =
  let s = segment_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. s.e_fixed in
    -.beta *. (s.last_work ** (1.0 +. beta)) *. (x ** (-.beta -. 1.0))
  | None ->
    let h = 1e-6 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. makespan_at t (e -. h)) /. (2.0 *. h)

let deriv2_at t e =
  let s = segment_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. s.e_fixed in
    beta *. (beta +. 1.0) *. (s.last_work ** (1.0 +. beta)) *. (x ** (-.beta -. 2.0))
  | None ->
    let h = 1e-5 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. (2.0 *. makespan_at t e) +. makespan_at t (e -. h)) /. (h *. h)

let min_makespan_limit t =
  if Array.length t.segs = 0 then 0.0 else t.segs.(0).last_start

exception Infeasible_target of { target : float; infimum : float }

let energy_for_makespan t m =
  let nsegs = Array.length t.segs in
  if nsegs = 0 then 0.0
  else begin
    if m <= min_makespan_limit t then
      raise (Infeasible_target { target = m; infimum = min_makespan_limit t });
    (* segments in decreasing energy order = increasing makespan order *)
    let rec go k =
      let s = t.segs.(k) in
      if k = nsegs - 1 then begin
        let sigma = s.last_work /. (m -. s.last_start) in
        s.e_fixed +. Power_model.energy_run t.model ~work:s.last_work ~speed:sigma
      end
      else begin
        (* the segment covers makespans in [M(e_max), M(e_min)) *)
        let m_hi = s.last_start +. (s.last_work /. last_speed t s s.e_min) in
        if m < m_hi then begin
          let sigma = s.last_work /. (m -. s.last_start) in
          s.e_fixed +. Power_model.energy_run t.model ~work:s.last_work ~speed:sigma
        end
        else go (k + 1)
      end
    in
    go 0
  end

let schedule_at t e =
  if Array.length t.segs = 0 then Schedule.of_entries []
  else begin
    let s = segment_at t e in
    let last_block =
      {
        Block.first = s.last_first;
        last = Instance.n t.inst - 1;
        work = s.last_work;
        start = s.last_start;
        speed = last_speed t s e;
      }
    in
    Schedule.of_entries
      (List.concat_map (Block.entries t.inst 0) (prefix t s @ [ last_block ]))
  end

let min_energy_delay ?(delay_exponent = 1.0) t =
  if Array.length t.segs = 0 then invalid_arg "Frontier.min_energy_delay: empty instance";
  if delay_exponent <= 0.0 then invalid_arg "Frontier.min_energy_delay: exponent must be positive";
  let objective ln_e =
    let e = Float.exp ln_e in
    ln_e +. (delay_exponent *. Float.log (makespan_at t e))
  in
  (* scale-aware bracket: around the total work at unit-ish speeds *)
  let w = Instance.total_work t.inst in
  let lo = Float.log (Float.max 1e-9 (w *. 1e-4)) and hi = Float.log (w *. 1e5) in
  (* coarse scan to localize the optimum, then golden section *)
  let grid = 256 in
  let best = ref (objective lo) and best_ln = ref lo in
  for i = 1 to grid do
    let ln_e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int grid) in
    let v = objective ln_e in
    if v < !best then begin
      best := v;
      best_ln := ln_e
    end
  done;
  let step = (hi -. lo) /. float_of_int grid in
  let ln_star =
    Convex.golden_min ~f:objective ~lo:(!best_ln -. (2.0 *. step)) ~hi:(!best_ln +. (2.0 *. step)) ()
  in
  let e_star = Float.exp ln_star in
  (e_star, e_star *. (makespan_at t e_star ** delay_exponent))

let sample ?jobs t ~lo ~hi ~n =
  Obs.span "frontier.sample" @@ fun () ->
  if n < 2 then invalid_arg "Frontier.sample: need at least two points";
  Array.to_list
    (Par.init ?jobs n (fun i ->
         let e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
         (e, makespan_at t e)))
