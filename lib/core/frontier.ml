let c_points = Obs.counter "frontier.points_evaluated"
let c_segments = Obs.counter "frontier.segments_emitted"

type segment = {
  prefix : Block.t list;
  e_fixed : float;
  last_first : int;
  last_work : float;
  last_start : float;
  e_min : float;
  e_max : float;
}

type t = { model : Power_model.t; inst : Instance.t; segs : segment list (* decreasing energy *) }

let build model inst =
  Obs.span "frontier.build" @@ fun () ->
  let n = Instance.n inst in
  if n = 0 then { model; inst; segs = [] }
  else begin
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    (* first configuration: window blocks for jobs 0..n-2 (in reverse,
       top of stack first), last job alone as the varying block *)
    let prefix_rev = ref (List.rev (Incmerge.window_blocks inst ~upto:(n - 2))) in
    let e_fixed = ref 0.0 in
    (* sum of finite prefix energies; infinite-speed blocks sit on top of
       the stack and never appear in an emitted segment *)
    List.iter
      (fun b -> if Float.is_finite b.Block.speed then e_fixed := !e_fixed +. Block.energy model b)
      !prefix_rev;
    let last_first = ref (n - 1) in
    let last_work = ref (work (n - 1)) in
    let last_start = ref (release (n - 1)) in
    let e_max = ref Float.infinity in
    let segs = ref [] in
    let emit e_min =
      if e_min < !e_max then begin
        segs :=
          {
            prefix = List.rev !prefix_rev;
            e_fixed = !e_fixed;
            last_first = !last_first;
            last_work = !last_work;
            last_start = !last_start;
            e_min;
            e_max = !e_max;
          }
          :: !segs;
        e_max := e_min
      end
    in
    let continue = ref true in
    while !continue do
      match !prefix_rev with
      | [] ->
        emit 0.0;
        continue := false
      | prev :: rest ->
        let merge_energy =
          if Float.is_finite prev.Block.speed then
            !e_fixed +. Power_model.energy_run model ~work:!last_work ~speed:prev.Block.speed
          else Float.infinity
        in
        emit merge_energy;
        (* merge prev into the varying last block *)
        prefix_rev := rest;
        if Float.is_finite prev.Block.speed then e_fixed := !e_fixed -. Block.energy model prev;
        last_first := prev.Block.first;
        last_work := !last_work +. prev.Block.work;
        last_start := prev.Block.start
    done;
    Obs.add c_segments (List.length !segs);
    { model; inst; segs = List.rev !segs }
  end

let segments t = t.segs

let breakpoints t =
  t.segs
  |> List.filter_map (fun s -> if s.e_min > 0.0 && Float.is_finite s.e_min then Some s.e_min else None)
  |> List.sort compare

let segment_at t e =
  if t.segs = [] then invalid_arg "Frontier.segment_at: empty instance";
  if e <= 0.0 then invalid_arg "Frontier.segment_at: energy must be positive";
  let rec go = function
    | [] -> invalid_arg "Frontier.segment_at: internal gap in segments"
    | [ s ] -> s
    | s :: rest -> if e > s.e_min then s else go rest
  in
  go t.segs

let last_speed t s e = Power_model.speed_for_energy t.model ~work:s.last_work ~energy:(e -. s.e_fixed)

let makespan_at t e =
  Obs.incr c_points;
  let s = segment_at t e in
  s.last_start +. (s.last_work /. last_speed t s e)

let deriv1_at t e =
  let s = segment_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. s.e_fixed in
    -.beta *. (s.last_work ** (1.0 +. beta)) *. (x ** (-.beta -. 1.0))
  | None ->
    let h = 1e-6 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. makespan_at t (e -. h)) /. (2.0 *. h)

let deriv2_at t e =
  let s = segment_at t e in
  match Power_model.alpha_exponent t.model with
  | Some a ->
    let beta = 1.0 /. (a -. 1.0) in
    let x = e -. s.e_fixed in
    beta *. (beta +. 1.0) *. (s.last_work ** (1.0 +. beta)) *. (x ** (-.beta -. 2.0))
  | None ->
    let h = 1e-5 *. (1.0 +. Float.abs e) in
    (makespan_at t (e +. h) -. (2.0 *. makespan_at t e) +. makespan_at t (e -. h)) /. (h *. h)

let min_makespan_limit t =
  match t.segs with
  | [] -> 0.0
  | first :: _ -> first.last_start

let energy_for_makespan t m =
  if t.segs = [] then 0.0
  else begin
    if m <= min_makespan_limit t then
      invalid_arg "Frontier.energy_for_makespan: target below the achievable infimum";
    (* segments in decreasing energy order = increasing makespan order *)
    let rec go = function
      | [] -> invalid_arg "Frontier.energy_for_makespan: no segment (unreachable)"
      | [ s ] ->
        let sigma = s.last_work /. (m -. s.last_start) in
        s.e_fixed +. Power_model.energy_run t.model ~work:s.last_work ~speed:sigma
      | s :: rest ->
        (* the segment covers makespans in [M(e_max), M(e_min)) *)
        let m_hi = s.last_start +. (s.last_work /. last_speed t s s.e_min) in
        if m < m_hi then begin
          let sigma = s.last_work /. (m -. s.last_start) in
          s.e_fixed +. Power_model.energy_run t.model ~work:s.last_work ~speed:sigma
        end
        else go rest
    in
    go t.segs
  end

let schedule_at t e =
  if t.segs = [] then Schedule.of_entries []
  else begin
    let s = segment_at t e in
    let last_block =
      {
        Block.first = s.last_first;
        last = Instance.n t.inst - 1;
        work = s.last_work;
        start = s.last_start;
        speed = last_speed t s e;
      }
    in
    Schedule.of_entries
      (List.concat_map (Block.entries t.inst 0) (s.prefix @ [ last_block ]))
  end

let min_energy_delay ?(delay_exponent = 1.0) t =
  if t.segs = [] then invalid_arg "Frontier.min_energy_delay: empty instance";
  if delay_exponent <= 0.0 then invalid_arg "Frontier.min_energy_delay: exponent must be positive";
  let objective ln_e =
    let e = Float.exp ln_e in
    ln_e +. (delay_exponent *. Float.log (makespan_at t e))
  in
  (* scale-aware bracket: around the total work at unit-ish speeds *)
  let w = Instance.total_work t.inst in
  let lo = Float.log (Float.max 1e-9 (w *. 1e-4)) and hi = Float.log (w *. 1e5) in
  (* coarse scan to localize the optimum, then golden section *)
  let grid = 256 in
  let best = ref (objective lo) and best_ln = ref lo in
  for i = 1 to grid do
    let ln_e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int grid) in
    let v = objective ln_e in
    if v < !best then begin
      best := v;
      best_ln := ln_e
    end
  done;
  let step = (hi -. lo) /. float_of_int grid in
  let ln_star =
    Convex.golden_min ~f:objective ~lo:(!best_ln -. (2.0 *. step)) ~hi:(!best_ln +. (2.0 *. step)) ()
  in
  let e_star = Float.exp ln_star in
  (e_star, e_star *. (makespan_at t e_star ** delay_exponent))

let sample t ~lo ~hi ~n =
  Obs.span "frontier.sample" @@ fun () ->
  if n < 2 then invalid_arg "Frontier.sample: need at least two points";
  List.init n (fun i ->
      let e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
      (e, makespan_at t e))
