(* Per-domain scratch arena for the kernel hot paths.

   One arena per domain (Domain.DLS on OCaml 5, a lazy global on 4.14
   — see the Scratch_slot copy rule in dune): a Par pool worker keeps
   its buffers across every solve it evaluates, so warm calls to
   Flow.solve_budget and the chunked Flow_frontier.curve allocate
   nothing proportional to the instance.  Buffers only ever grow; the
   grow counter below makes regrowth visible under --metrics. *)

let c_grows = Obs.counter "scratch.grows"
let c_harmonic = Obs.counter "scratch.harmonic_builds"

let float_slots = 24
let int_slots = 24
let soa_slots = 4

type t = {
  fa : floatarray array;
  ia : int array array;
  soa : Block.Soa.t array;
  mutable h : floatarray;
  mutable hp : floatarray;  (* prefix sums of h: hp.(l) = sum_{i=1..l} h.(i) *)
  mutable pw : floatarray;  (* pw.(l) = sum_{t=1..l} t^(1 - 1/alpha) *)
  mutable h_alpha : float;
  mutable h_len : int;  (* entries (0 .. h_len) of h/hp/pw are valid for h_alpha *)
}

let create () =
  {
    fa = Array.init float_slots (fun _ -> Float.Array.create 0);
    ia = Array.init int_slots (fun _ -> [||]);
    soa = Array.init soa_slots (fun _ -> Block.Soa.create 1);
    h = Float.Array.create 1;
    hp = Float.Array.create 1;
    pw = Float.Array.create 1;
    h_alpha = Float.nan;
    h_len = -1;
  }

let slot = Scratch_slot.make create
let get () = Scratch_slot.get slot

(* doubling keeps the number of regrowths logarithmic in the largest
   instance a domain ever sees *)
let grown_capacity old n = Int.max n (Int.max 8 (2 * old))

let floats t ~slot n =
  let cur = t.fa.(slot) in
  if Float.Array.length cur >= n then cur
  else begin
    Obs.incr c_grows;
    let b = Float.Array.create (grown_capacity (Float.Array.length cur) n) in
    t.fa.(slot) <- b;
    b
  end

let ints t ~slot n =
  let cur = t.ia.(slot) in
  if Array.length cur >= n then cur
  else begin
    Obs.incr c_grows;
    let b = Array.make (grown_capacity (Array.length cur) n) 0 in
    t.ia.(slot) <- b;
    b
  end

let block_soa t ~slot n =
  let s = t.soa.(slot) in
  if Block.Soa.capacity s < n then Obs.incr c_grows;
  Block.Soa.reserve s n;
  s

(* Harmonic-like partial-sum tables, all functions of (alpha, n) only,
   cached per domain and extended in place; the recurrences are
   deterministic, so an extended prefix is bitwise identical to a
   from-scratch rebuild:

     h.(l)  = sum_{t=1..l} t^(-1/alpha)   free-run durations (Flow)
     hp.(l) = sum_{i=1..l} h.(i)          O(1) free-run total flow
     pw.(l) = sum_{t=1..l} t^(1-1/alpha)  O(1) free-run total energy *)
let ensure_tables t ~alpha ~n =
  if not (t.h_alpha = alpha && t.h_len >= n) then begin
    Obs.incr c_harmonic;
    let lo = if t.h_alpha = alpha then t.h_len else -1 in
    let lo =
      if Float.Array.length t.h >= n + 1 then lo
      else begin
        let cap = grown_capacity (Float.Array.length t.h) (n + 1) in
        let grow cur =
          let b = Float.Array.create cap in
          Float.Array.blit cur 0 b 0 (Int.max (lo + 1) 0);
          b
        in
        t.h <- grow t.h;
        t.hp <- grow t.hp;
        t.pw <- grow t.pw;
        lo
      end
    in
    let lo =
      if lo >= 0 then lo
      else begin
        Float.Array.set t.h 0 0.0;
        Float.Array.set t.hp 0 0.0;
        Float.Array.set t.pw 0 0.0;
        0
      end
    in
    let inv_a = 1.0 /. alpha in
    for i = lo + 1 to n do
      let fi = float_of_int i in
      Float.Array.set t.h i (Float.Array.get t.h (i - 1) +. (fi ** (-1.0 /. alpha)));
      Float.Array.set t.hp i (Float.Array.get t.hp (i - 1) +. Float.Array.get t.h i);
      Float.Array.set t.pw i (Float.Array.get t.pw (i - 1) +. (fi ** (1.0 -. inv_a)))
    done;
    t.h_alpha <- alpha;
    t.h_len <- n
  end

let harmonic t ~alpha ~n =
  ensure_tables t ~alpha ~n;
  t.h

let flow_tables t ~alpha ~n =
  ensure_tables t ~alpha ~n;
  (t.h, t.hp, t.pw)
