(* Boxed reference kernels, in two layers.

   The top-level functions mirror the CURRENT Flow algorithm —
   analytic singleton windows, fused-derivative Newton for pinned
   runs, O(1) free-run totals from the power tables, the analytic
   budget bracket — operation for operation on boxed storage
   (float arrays and records allocated per call, no scratch arena).
   Every float they produce is bitwise identical to the unboxed
   kernels': the [kernel:*] fuzz properties and test_kernel assert
   exactly that, which is what certifies the Float.Array/scratch
   layout as a pure representation change.

   [Legacy] freezes the pre-scratch PR6-era algorithm — per-iteration
   Brent for every pinned window, per-job evaluation everywhere, full
   materialization inside the outer root find — so the
   [kernel_flow_legacy] bench section measures the old cost on the
   same machine (the before/after ratio in BENCH_PR7.baseline.json is
   self-contained) and a tolerance property checks the new root
   against the old one.

   Deliberately uninstrumented (no Obs counters, no Fault sites of
   their own — Rootfind's are shared): the references must cost
   exactly their arithmetic, and differential properties skip when
   fault injection is armed, so they never need perturbing. *)

let tol = 1e-12

type solution = {
  last_speed : float;
  speeds : float array;
  completions : float array;
  flow : float;
  energy : float;
}

let empty_solution s =
  { last_speed = s; speeds = [||]; completions = [||]; flow = 0.0; energy = 0.0 }

(* ---- boxed mirror of the current Flow algorithm ---- *)

type env = {
  alpha : float;
  inv_a : float;
  n : int;
  w : float;
  rel : float array;
  rel_sum : float array;
  h : float array;
  hp : float array;
  pw : float array;
  r_first : int array;
  r_last : int array;
  r_pinned : int array;
  r_end : float array;
  r_end_a : float array;
}

(* same recurrences as Scratch.flow_tables, so the cached and the
   per-call tables are bitwise equal *)
let tables ~alpha n =
  let h = Array.make (n + 1) 0.0 in
  let hp = Array.make (n + 1) 0.0 in
  let pw = Array.make (n + 1) 0.0 in
  let inv_a = 1.0 /. alpha in
  for i = 1 to n do
    let fi = float_of_int i in
    h.(i) <- h.(i - 1) +. (fi ** (-1.0 /. alpha));
    hp.(i) <- hp.(i - 1) +. h.(i);
    pw.(i) <- pw.(i - 1) +. (fi ** (1.0 -. inv_a))
  done;
  (h, hp, pw)

let make_env ~alpha inst =
  let n = Instance.n inst in
  let rel = Array.make n 0.0 in
  let rel_sum = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    let r = (Instance.job inst i).Job.release in
    rel.(i) <- r;
    rel_sum.(i + 1) <- rel_sum.(i) +. r
  done;
  let h, hp, pw = tables ~alpha n in
  {
    alpha;
    inv_a = 1.0 /. alpha;
    n;
    w = (Instance.job inst 0).Job.work;
    rel;
    rel_sum;
    h;
    hp;
    pw;
    r_first = Array.make n 0;
    r_last = Array.make n 0;
    r_pinned = Array.make n 0;
    r_end = Array.make n 0.0;
    r_end_a = Array.make n 0.0;
  }

let merge_pass env s =
  if s <= 0.0 || not (Float.is_finite s) then invalid_arg "Kernel_ref: last speed must be positive";
  let { alpha; inv_a; n; w; rel; h; r_first; r_last; r_pinned; r_end; r_end_a; _ } = env in
  let sa = s ** alpha in
  let pinned_end ~len ~window =
    if window <= tol then (Float.infinity, Float.infinity)
    else if len = 1 then begin
      if w /. s <= window then (s, sa)
      else begin
        let x = w /. window in
        (x, x ** alpha)
      end
    end
    else begin
      let f_df x =
        let xa = x ** alpha in
        let s0 = ref 0.0 and s1 = ref 0.0 in
        for t = 0 to len - 1 do
          let u = xa +. (float_of_int t *. sa) in
          let term = w /. (u ** inv_a) in
          s0 := !s0 +. term;
          s1 := !s1 +. (term /. u)
        done;
        (!s0 -. window, -.(xa /. x) *. !s1)
      in
      let fs, _ = f_df s in
      if fs <= 0.0 then (s, sa)
      else begin
        let x0 = Float.max (2.0 *. s) (float_of_int len *. w /. window) in
        let x = Rootfind.newton_bracketed ~f_df ~lo:s ~hi:(2.0 *. x0) ~x0 () in
        (x, x ** alpha)
      end
    end
  in
  let cur_first = ref 0 and cur_last = ref 0 in
  let cur_pinned = ref false in
  let cur_end = ref s and cur_end_a = ref sa in
  let make_run first last =
    cur_first := first;
    cur_last := last;
    if last = n - 1 then begin
      cur_pinned := false;
      cur_end := s;
      cur_end_a := sa
    end
    else begin
      let len = last - first + 1 in
      let window = rel.(last + 1) -. rel.(first) in
      if w /. s *. h.(len) < window -. tol then begin
        cur_pinned := false;
        cur_end := s;
        cur_end_a := sa
      end
      else begin
        cur_pinned := true;
        let e, ea = pinned_end ~len ~window in
        cur_end := e;
        cur_end_a := ea
      end
    end
  in
  let top = ref 0 in
  for i = 0 to n - 1 do
    make_run i i;
    let merging = ref true in
    while !merging do
      if !top > 0 && r_pinned.(!top - 1) = 1 then begin
        let first_a = !cur_end_a +. (float_of_int (!cur_last - !cur_first) *. sa) in
        if r_end_a.(!top - 1) > first_a +. sa +. (1e-9 *. sa) then begin
          decr top;
          make_run r_first.(!top) !cur_last
        end
        else merging := false
      end
      else merging := false
    done;
    r_first.(!top) <- !cur_first;
    r_last.(!top) <- !cur_last;
    r_pinned.(!top) <- (if !cur_pinned then 1 else 0);
    r_end.(!top) <- !cur_end;
    r_end_a.(!top) <- !cur_end_a;
    incr top
  done;
  !top

let eval_energy env s =
  let top = merge_pass env s in
  let { alpha; inv_a; w; pw; r_first; r_last; r_pinned; r_end_a; _ } = env in
  let sa = s ** alpha in
  let am1_a = 1.0 -. inv_a in
  let sam1 = s ** (alpha -. 1.0) in
  let energy = ref 0.0 in
  for ri = 0 to top - 1 do
    let first = r_first.(ri) and last = r_last.(ri) in
    if r_pinned.(ri) = 1 then begin
      let ea = r_end_a.(ri) in
      for k = first to last do
        let u = ea +. (float_of_int (last - k) *. sa) in
        energy := !energy +. (w *. (u ** am1_a))
      done
    end
    else energy := !energy +. (w *. sam1 *. pw.(last - first + 1))
  done;
  !energy

let solve_full env s =
  let top = merge_pass env s in
  let { alpha; inv_a; n; w; rel; r_first; r_last; r_end_a; _ } = env in
  let sa = s ** alpha in
  let speeds = Array.make n 0.0 in
  let completions = Array.make n 0.0 in
  for ri = 0 to top - 1 do
    let first = r_first.(ri) and last = r_last.(ri) in
    let xa = r_end_a.(ri) in
    let t = ref rel.(first) in
    for k = first to last do
      let sigma = (xa +. (float_of_int (last - k) *. sa)) ** inv_a in
      speeds.(k) <- sigma;
      t := !t +. (w /. sigma);
      completions.(k) <- !t
    done
  done;
  let flow = ref 0.0 and energy = ref 0.0 in
  for k = 0 to n - 1 do
    flow := !flow +. (completions.(k) -. rel.(k));
    energy := !energy +. (w *. (speeds.(k) ** (alpha -. 1.0)))
  done;
  { last_speed = s; speeds; completions; flow = !flow; energy = !energy }

let validate ~alpha inst =
  if alpha <= 1.0 then invalid_arg "Kernel_ref: need alpha > 1";
  if not (Instance.is_equal_work inst) then
    invalid_arg "Kernel_ref: Theorem 1 structure requires equal-work jobs"

let solve_budget ?(eps = 1e-12) ?warm ~alpha ~energy inst =
  if energy <= 0.0 then invalid_arg "Kernel_ref.solve_budget: energy must be positive";
  if Instance.n inst = 0 then empty_solution 0.0
  else begin
    validate ~alpha inst;
    let n = Instance.n inst in
    let env = make_env ~alpha inst in
    let g s = eval_energy env s -. energy in
    let lo, glo, hi, ghi =
      match warm with
      | Some s0 when s0 > 0.0 && Float.is_finite s0 ->
        let g0 = g s0 in
        if g0 <= 0.0 then begin
          let hi = ref (s0 *. 1.05) in
          let ghi = ref (g !hi) in
          while !ghi < 0.0 && !hi < 1e300 do
            hi := !hi *. 2.0;
            ghi := g !hi
          done;
          (s0, g0, !hi, !ghi)
        end
        else begin
          let lo = ref (s0 /. 1.05) in
          let glo = ref (g !lo) in
          while !glo > 0.0 && !lo > 1e-300 do
            lo := !lo /. 2.0;
            glo := g !lo
          done;
          (!lo, !glo, s0, g0)
        end
      | _ ->
        let s0 = (energy /. (float_of_int n *. env.w)) ** (1.0 /. (alpha -. 1.0)) in
        if s0 > 0.0 && Float.is_finite s0 then begin
          let g0 = g s0 in
          if g0 >= 0.0 then begin
            let lo = ref (0.5 *. s0) in
            let glo = ref (g !lo) in
            while !glo > 0.0 && !lo > 1e-300 do
              lo := 0.5 *. !lo;
              glo := g !lo
            done;
            (!lo, !glo, s0, g0)
          end
          else begin
            let hi = ref (2.0 *. s0) in
            let ghi = ref (g !hi) in
            while !ghi < 0.0 && !hi < 1e300 do
              hi := !hi *. 2.0;
              ghi := g !hi
            done;
            (s0, g0, !hi, !ghi)
          end
        end
        else begin
          let lo = ref 1e-6 in
          let glo = ref (g !lo) in
          while !glo > 0.0 && !lo > 1e-300 do
            lo := !lo /. 16.0;
            glo := g !lo
          done;
          let hi = ref 1.0 in
          let ghi = ref (g !hi) in
          while !ghi < 0.0 && !hi < 1e300 do
            hi := !hi *. 2.0;
            ghi := g !hi
          done;
          (!lo, !glo, !hi, !ghi)
        end
    in
    let s = Rootfind.brent ~f:g ~lo ~hi ~flo:glo ~fhi:ghi ~eps ~max_iter:300 () in
    solve_full env s
  end

(* same grid and 16-point warm chunks as Flow_frontier.curve,
   evaluated sequentially *)
let curve_chunk = 16

let curve ~alpha inst ~e_lo ~e_hi ~n =
  if n < 2 then invalid_arg "Kernel_ref.curve: need n >= 2";
  let energy_at i = e_lo +. ((e_hi -. e_lo) *. float_of_int i /. float_of_int (n - 1)) in
  let nchunks = (n + curve_chunk - 1) / curve_chunk in
  let chunks =
    Array.init nchunks (fun c ->
        let first = c * curve_chunk in
        let last = Int.min n (first + curve_chunk) - 1 in
        let out = Array.make (last - first + 1) (0.0, 0.0) in
        let warm = ref None in
        for i = first to last do
          let e = energy_at i in
          let sol = solve_budget ?warm:!warm ~alpha ~energy:e inst in
          warm := Some sol.last_speed;
          out.(i - first) <- (e, sol.flow)
        done;
        out)
  in
  List.concat_map Array.to_list (Array.to_list chunks)

(* ---- frozen PR6-era flow solver ---- *)

module Legacy = struct
  type solution = {
    last_speed : float;
    speeds : float array;
    completions : float array;
    flow : float;
    energy : float;
  }

  let empty_solution s =
    { last_speed = s; speeds = [||]; completions = [||]; flow = 0.0; energy = 0.0 }

  let harmonic ~alpha n =
    let h = Array.make (n + 1) 0.0 in
    for t = 1 to n do
      h.(t) <- h.(t - 1) +. (float_of_int t ** (-1.0 /. alpha))
    done;
    h

  type run = { first : int; last : int; pinned : bool; end_speed : float }

  let job_speed ~alpha ~s x last k =
    ((x ** alpha) +. (float_of_int (last - k) *. (s ** alpha))) ** (1.0 /. alpha)

  let solve_with ~alpha ~h inst s =
    if s <= 0.0 || not (Float.is_finite s) then
      invalid_arg "Kernel_ref.Legacy: last speed must be positive";
    let n = Instance.n inst in
    if n = 0 then empty_solution s
    else begin
      let w = (Instance.job inst 0).Job.work in
      let release i = (Instance.job inst i).Job.release in
      let sa = s ** alpha in
      let free_duration l = w /. s *. h.(l) in
      let pinned_end_speed ~len ~window =
        if window <= tol then Float.infinity
        else begin
          let dur x =
            let acc = ref 0.0 in
            for t = 0 to len - 1 do
              acc := !acc +. (w /. (((x ** alpha) +. (float_of_int t *. sa)) ** (1.0 /. alpha)))
            done;
            !acc
          in
          let f x = dur x -. window in
          if f s <= 0.0 then s
          else begin
            let hi = ref (Float.max (2.0 *. s) (2.0 *. float_of_int len *. w /. window)) in
            let i = ref 0 in
            while f !hi > 0.0 && !i < 200 do
              hi := !hi *. 2.0;
              incr i
            done;
            Rootfind.brent ~f ~lo:s ~hi:!hi ()
          end
        end
      in
      let make_run first last =
        let len = last - first + 1 in
        if last = n - 1 then { first; last; pinned = false; end_speed = s }
        else begin
          let window = release (last + 1) -. release first in
          if free_duration len < window -. tol then { first; last; pinned = false; end_speed = s }
          else { first; last; pinned = true; end_speed = pinned_end_speed ~len ~window }
        end
      in
      let first_speed r =
        if Float.is_finite r.end_speed then job_speed ~alpha ~s r.end_speed r.last r.first
        else Float.infinity
      in
      let stack = Array.make n { first = 0; last = 0; pinned = false; end_speed = s } in
      let top = ref 0 in
      for i = 0 to n - 1 do
        let cur = ref (make_run i i) in
        let merging = ref true in
        while !merging do
          if !top > 0 then begin
            let prev = stack.(!top - 1) in
            if
              prev.pinned
              && (prev.end_speed ** alpha) > (first_speed !cur ** alpha) +. sa +. (1e-9 *. sa)
            then begin
              decr top;
              cur := make_run prev.first !cur.last
            end
            else merging := false
          end
          else merging := false
        done;
        stack.(!top) <- !cur;
        incr top
      done;
      let speeds = Array.make n 0.0 in
      let completions = Array.make n 0.0 in
      for ri = 0 to !top - 1 do
        let r = stack.(ri) in
        let t = ref (release r.first) in
        for k = r.first to r.last do
          let sigma = job_speed ~alpha ~s r.end_speed r.last k in
          speeds.(k) <- sigma;
          t := !t +. (w /. sigma);
          completions.(k) <- !t
        done
      done;
      let flow = ref 0.0 and energy = ref 0.0 in
      for k = 0 to n - 1 do
        flow := !flow +. (completions.(k) -. release k);
        energy := !energy +. (w *. (speeds.(k) ** (alpha -. 1.0)))
      done;
      { last_speed = s; speeds; completions; flow = !flow; energy = !energy }
    end

  let validate ~alpha inst =
    if alpha <= 1.0 then invalid_arg "Kernel_ref.Legacy: need alpha > 1";
    if not (Instance.is_equal_work inst) then
      invalid_arg "Kernel_ref.Legacy: Theorem 1 structure requires equal-work jobs"

  let solve_budget ?(eps = 1e-12) ?warm ~alpha ~energy inst =
    if energy <= 0.0 then invalid_arg "Kernel_ref.Legacy.solve_budget: energy must be positive";
    if Instance.n inst = 0 then empty_solution 0.0
    else begin
      validate ~alpha inst;
      let h = harmonic ~alpha (Instance.n inst) in
      let g s = (solve_with ~alpha ~h inst s).energy -. energy in
      let lo, hi =
        match warm with
        | Some s0 when s0 > 0.0 && Float.is_finite s0 ->
          if g s0 <= 0.0 then begin
            let hi = ref (s0 *. 1.05) in
            while g !hi < 0.0 && !hi < 1e300 do
              hi := !hi *. 2.0
            done;
            (s0, !hi)
          end
          else begin
            let lo = ref (s0 /. 1.05) in
            while g !lo > 0.0 && !lo > 1e-300 do
              lo := !lo /. 2.0
            done;
            (!lo, s0)
          end
        | _ ->
          let lo = ref 1e-6 in
          while g !lo > 0.0 && !lo > 1e-300 do
            lo := !lo /. 16.0
          done;
          let hi = ref 1.0 in
          while g !hi < 0.0 && !hi < 1e300 do
            hi := !hi *. 2.0
          done;
          (!lo, !hi)
      in
      let s = Rootfind.brent ~f:g ~lo ~hi ~eps ~max_iter:300 () in
      solve_with ~alpha ~h inst s
    end

  let curve ~alpha inst ~e_lo ~e_hi ~n =
    if n < 2 then invalid_arg "Kernel_ref.Legacy.curve: need n >= 2";
    let energy_at i = e_lo +. ((e_hi -. e_lo) *. float_of_int i /. float_of_int (n - 1)) in
    let nchunks = (n + curve_chunk - 1) / curve_chunk in
    let chunks =
      Array.init nchunks (fun c ->
          let first = c * curve_chunk in
          let last = Int.min n (first + curve_chunk) - 1 in
          let out = Array.make (last - first + 1) (0.0, 0.0) in
          let warm = ref None in
          for i = first to last do
            let e = energy_at i in
            let sol = solve_budget ?warm:!warm ~alpha ~energy:e inst in
            warm := Some sol.last_speed;
            out.(i - first) <- (e, sol.flow)
          done;
          out)
    in
    List.concat_map Array.to_list (Array.to_list chunks)
end

(* ---- boxed frontier reference ---- *)

type segment = {
  prefix_len : int;
  e_fixed : float;
  last_first : int;
  last_work : float;
  last_start : float;
  e_min : float;
  e_max : float;
}

type frontier = { model : Power_model.t; segs : segment array }

let frontier_build model inst =
  let n = Instance.n inst in
  if n = 0 then { model; segs = [||] }
  else begin
    let release i = (Instance.job inst i).Job.release in
    let work i = (Instance.job inst i).Job.work in
    let blocks = Array.of_list (Incmerge.window_blocks inst ~upto:(n - 2)) in
    let m = Array.length blocks in
    let cum_work, cum_energy = Incmerge.prefix_sums model blocks in
    let w_last = work (n - 1) in
    let segs = ref [] in
    let e_max = ref Float.infinity in
    for j = m downto 0 do
      let last_first = if j = m then n - 1 else blocks.(j).Block.first in
      let last_start = if j = m then release (n - 1) else blocks.(j).Block.start in
      let last_work = cum_work.(m) -. cum_work.(j) +. w_last in
      let e_min =
        if j = 0 then 0.0
        else begin
          let prev = blocks.(j - 1) in
          if Float.is_finite prev.Block.speed then
            cum_energy.(j) +. Power_model.energy_run model ~work:last_work ~speed:prev.Block.speed
          else Float.infinity
        end
      in
      if e_min < !e_max then begin
        segs :=
          { prefix_len = j; e_fixed = cum_energy.(j); last_first; last_work; last_start; e_min;
            e_max = !e_max }
          :: !segs;
        e_max := e_min
      end
    done;
    { model; segs = Array.of_list (List.rev !segs) }
  end

let segment_at t e =
  let m = Array.length t.segs in
  if m = 0 then invalid_arg "Kernel_ref.segment_at: empty instance";
  if e <= 0.0 then invalid_arg "Kernel_ref.segment_at: energy must be positive";
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if e > t.segs.(mid).e_min then hi := mid else lo := mid + 1
  done;
  t.segs.(!lo)

let makespan_at t e =
  let s = segment_at t e in
  s.last_start
  +. (s.last_work /. Power_model.speed_for_energy t.model ~work:s.last_work ~energy:(e -. s.e_fixed))

let sample t ~lo ~hi ~n =
  if n < 2 then invalid_arg "Kernel_ref.sample: need at least two points";
  List.init n (fun i ->
      let e = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
      (e, makespan_at t e))
