(** Boxed reference kernels — the other side of the unboxed hot
    paths' two claims.

    The top-level functions mirror the {e current} {!Flow} algorithm
    operation for operation on boxed per-call storage (no scratch
    arena, no [Float.Array]), so comparing them against
    {!Flow_frontier.curve} and {!Frontier.sample} for exact float
    equality — as the [kernel:*] fuzz properties and [test_kernel]
    do — certifies the unboxed layout as a pure representation
    change.

    {!Legacy} freezes the pre-scratch PR6-era flow solver, so the
    [kernel_flow_legacy] bench section measures the old cost on the
    same machine as the new (the speedup ratio in
    [BENCH_PR7.baseline.json] is self-contained) and a tolerance
    property pins the new algorithm's roots to the old one's.

    Uninstrumented by design: no [Obs] counters and no [Fault] sites
    of their own (only {!Rootfind}'s shared ones), so each reference
    costs exactly its arithmetic.  Not public solvers — nothing
    outside tests and the bench should call them. *)

type solution = {
  last_speed : float;
  speeds : float array;
  completions : float array;
  flow : float;
  energy : float;
}

val solve_budget :
  ?eps:float -> ?warm:float -> alpha:float -> energy:float -> Instance.t -> solution
(** Boxed mirror of {!Flow.solve_budget}: identical bracketing,
    root finds and materialization, bitwise-equal results.
    @raise Invalid_argument under exactly the conditions of
    {!Flow.solve_budget}. *)

val curve : alpha:float -> Instance.t -> e_lo:float -> e_hi:float -> n:int -> (float * float) list
(** Boxed mirror of {!Flow_frontier.curve}: same energy grid and
    16-point warm-start chunks, evaluated sequentially,
    bitwise-equal results.
    @raise Invalid_argument when [n < 2]. *)

(** The pre-scratch PR6-era flow solver, frozen: derivative-free
    Brent for every pinned window, per-job evaluation everywhere,
    full materialization inside the outer root find.  Benchmark
    baseline and tolerance-comparison target; its results agree with
    the current algorithm's to root-finder precision, not bitwise. *)
module Legacy : sig
  type solution = {
    last_speed : float;
    speeds : float array;
    completions : float array;
    flow : float;
    energy : float;
  }

  val solve_budget :
    ?eps:float -> ?warm:float -> alpha:float -> energy:float -> Instance.t -> solution
  (** PR6-era {!Flow.solve_budget}.
      @raise Invalid_argument under exactly the conditions of
      {!Flow.solve_budget}. *)

  val curve : alpha:float -> Instance.t -> e_lo:float -> e_hi:float -> n:int -> (float * float) list
  (** PR6-era {!Flow_frontier.curve}, evaluated sequentially.
      @raise Invalid_argument when [n < 2]. *)
end

type frontier

val frontier_build : Power_model.t -> Instance.t -> frontier
(** Reference {!Frontier.build} on boxed blocks and segment records;
    the segment set is bitwise identical to the unboxed build's. *)

val makespan_at : frontier -> float -> float
(** Reference {!Frontier.makespan_at} (boxed binary search).
    @raise Invalid_argument when the energy is non-positive or the
    instance is empty. *)

val sample : frontier -> lo:float -> hi:float -> n:int -> (float * float) list
(** Reference {!Frontier.sample} on the same even grid, sequential,
    bitwise-equal results.
    @raise Invalid_argument when [n < 2]. *)
