let c_states = Obs.counter "dp_makespan.states_expanded"

let block_feasible inst ~first ~last ~speed =
  Block.jobs_feasible inst
    { Block.first; last; work = 0.0 (* unused *); start = (Instance.job inst first).Job.release; speed }

let min_prefix_energy model inst =
  let n = Instance.n inst in
  let release i = (Instance.job inst i).Job.release in
  let prefix_work = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix_work.(i + 1) <- prefix_work.(i) +. (Instance.job inst i).Job.work
  done;
  let work_range i j = prefix_work.(j + 1) -. prefix_work.(i) in
  let dp = Array.make n Float.infinity in
  (* dp.(j): min energy for jobs 0..j, each block ending at the next release *)
  (* O(n^2) states; counted in one batch below to keep the loop clean *)
  if n >= 2 then Obs.add c_states (n * (n - 1) / 2);
  for j = 0 to n - 2 do
    for i = 0 to j do
      Fault.tick ();
      let before = if i = 0 then 0.0 else dp.(i - 1) in
      if Float.is_finite before then begin
        let w = work_range i j in
        let speed = Block.window_speed ~work:w ~start:(release i) ~next_release:(release (j + 1)) in
        if Float.is_finite speed && block_feasible inst ~first:i ~last:j ~speed then begin
          let e = before +. Power_model.energy_run model ~work:w ~speed in
          if e < dp.(j) then dp.(j) <- e
        end
      end
    done
  done;
  dp

let best_split model ~energy inst =
  Obs.span "dp_makespan.best_split" @@ fun () ->
  Fault.enter "dp.solve";
  let n = Instance.n inst in
  if n = 0 then None
  else begin
    if energy <= 0.0 then invalid_arg "Dp_makespan: energy budget must be positive";
    let release i = (Instance.job inst i).Job.release in
    let prefix_work = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      prefix_work.(i + 1) <- prefix_work.(i) +. (Instance.job inst i).Job.work
    done;
    let dp = min_prefix_energy model inst in
    let best = ref None in
    for s = 0 to n - 1 do
      let before = if s = 0 then 0.0 else dp.(s - 1) in
      let remaining = energy -. before in
      if Float.is_finite before && remaining > 0.0 then begin
        let w = prefix_work.(n) -. prefix_work.(s) in
        match Power_model.speed_for_energy_opt model ~work:w ~energy:remaining with
        | None -> ()
        | Some speed ->
          if block_feasible inst ~first:s ~last:(n - 1) ~speed then begin
            let m = release s +. (w /. speed) in
            match !best with
            | Some (m', _, _) when m' <= m -> ()
            | _ -> best := Some (m, s, speed)
          end
      end
    done;
    !best
  end

(* reconstruct the pinned-prefix blocks achieving dp.(s-1) *)
let reconstruct_prefix model inst upto =
  let release i = (Instance.job inst i).Job.release in
  let prefix_work = Array.make (Instance.n inst + 1) 0.0 in
  for i = 0 to Instance.n inst - 1 do
    prefix_work.(i + 1) <- prefix_work.(i) +. (Instance.job inst i).Job.work
  done;
  let dp = min_prefix_energy model inst in
  let rec go j acc =
    if j < 0 then acc
    else begin
      (* find i achieving dp.(j) *)
      let found = ref None in
      for i = j downto 0 do
        let before = if i = 0 then 0.0 else dp.(i - 1) in
        if Float.is_finite before && !found = None then begin
          let w = prefix_work.(j + 1) -. prefix_work.(i) in
          let speed = Block.window_speed ~work:w ~start:(release i) ~next_release:(release (j + 1)) in
          if Float.is_finite speed
             && block_feasible inst ~first:i ~last:j ~speed
             && before +. Power_model.energy_run model ~work:w ~speed <= dp.(j) +. (1e-9 *. (1.0 +. dp.(j)))
          then found := Some i
        end
      done;
      match !found with
      | None -> invalid_arg "Dp_makespan: inconsistent DP table"
      | Some i ->
        let w = prefix_work.(j + 1) -. prefix_work.(i) in
        let speed = Block.window_speed ~work:w ~start:(release i) ~next_release:(release (j + 1)) in
        go (i - 1) ({ Block.first = i; last = j; work = w; start = release i; speed } :: acc)
    end
  in
  go upto []

let solve model ~energy inst =
  match best_split model ~energy inst with
  | None -> Schedule.of_entries []
  | Some (_, s, speed) ->
    let n = Instance.n inst in
    let w =
      let acc = ref 0.0 in
      for i = s to n - 1 do
        acc := !acc +. (Instance.job inst i).Job.work
      done;
      !acc
    in
    let last_block =
      { Block.first = s; last = n - 1; work = w; start = (Instance.job inst s).Job.release; speed }
    in
    let blocks = reconstruct_prefix model inst (s - 1) @ [ last_block ] in
    Schedule.of_entries (List.concat_map (Block.entries inst 0) blocks)

let makespan model ~energy inst =
  match best_split model ~energy inst with None -> 0.0 | Some (m, _, _) -> m
