let c_states = Obs.counter "brute.states_expanded"
let c_feasible = Obs.counter "brute.feasible_partitions"

let partitions n =
  (* all lists of cut positions: a cut after index i means blocks split there *)
  let rec go i acc =
    if i >= n - 1 then [ acc ]
    else go (i + 1) acc @ go (i + 1) (i :: acc)
  in
  if n = 0 then [] else List.map (fun cuts -> List.sort compare cuts) (go 0 [])

let blocks_of_cuts model ~energy inst cuts =
  let n = Instance.n inst in
  let release i = (Instance.job inst i).Job.release in
  let bounds =
    (* block index ranges from the cut set *)
    let rec go first cuts acc =
      match cuts with
      | [] -> List.rev ((first, n - 1) :: acc)
      | c :: rest -> go (c + 1) rest ((first, c) :: acc)
    in
    go 0 cuts []
  in
  let rec price acc spent = function
    | [] -> Some (List.rev acc)
    | (first, last) :: rest ->
      let w =
        let acc = ref 0.0 in
        for i = first to last do
          acc := !acc +. (Instance.job inst i).Job.work
        done;
        !acc
      in
      let start = release first in
      if last = n - 1 then begin
        let remaining = energy -. spent in
        if remaining <= 0.0 then None
        else
          match Power_model.speed_for_energy_opt model ~work:w ~energy:remaining with
          | None -> None
          | Some speed ->
            let b = { Block.first; last; work = w; start; speed } in
            if Block.jobs_feasible inst b then Some (List.rev (b :: acc)) else None
      end
      else begin
        let speed = Block.window_speed ~work:w ~start ~next_release:(release (last + 1)) in
        if not (Float.is_finite speed) then None
        else begin
          let b = { Block.first; last; work = w; start; speed } in
          if Block.jobs_feasible inst b then
            price (b :: acc) (spent +. Power_model.energy_run model ~work:w ~speed) rest
          else None
        end
      end
  in
  price [] 0.0 bounds

let all_feasible_partitions model ~energy inst =
  let n = Instance.n inst in
  if n = 0 then []
  else begin
    if n > 20 then invalid_arg "Brute: instance too large for exponential search";
    if energy <= 0.0 then invalid_arg "Brute: energy budget must be positive";
    Obs.span "brute.search" @@ fun () ->
    Fault.enter "brute.search";
    let feasible =
      List.filter_map
        (fun cuts ->
          Obs.incr c_states;
          Fault.tick ();
          match blocks_of_cuts model ~energy inst cuts with
          | None -> None
          | Some bs ->
            let last = List.nth bs (List.length bs - 1) in
            Some (bs, Block.finish last))
        (partitions n)
    in
    Obs.add c_feasible (List.length feasible);
    feasible
  end

let best model ~energy inst =
  match all_feasible_partitions model ~energy inst with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun (bb, bm) (bs, m) -> if m < bm then (bs, m) else (bb, bm)) first rest)

let makespan model ~energy inst =
  if Instance.is_empty inst then 0.0
  else
    match best model ~energy inst with
    | None -> invalid_arg "Brute.makespan: no feasible partition"
    | Some (_, m) -> m

let solve model ~energy inst =
  if Instance.is_empty inst then Schedule.of_entries []
  else
    match best model ~energy inst with
    | None -> invalid_arg "Brute.solve: no feasible partition"
    | Some (bs, _) -> Schedule.of_entries (List.concat_map (Block.entries inst 0) bs)
