(** Multiprocessor makespan with common release and unequal works.

    Theorem 11 makes this NP-hard, but the paper notes (after Pruhs,
    van Stee and Uthaisombut) that the immediate-release case reduces
    to minimizing the L_α norm of processor loads, for which Alon et
    al.'s PTAS applies: with every job available at time 0, each
    processor in a non-dominated schedule runs at one constant speed and
    finishes at the common makespan [M], so the energy is
    [M^(1−α) · Σ_p L_p^α] — minimizing makespan for a budget is exactly
    minimizing [Σ_p L_p^α] over assignments.

    We implement the practical ladder: LPT greedy on the norm, move/swap
    local search on top of it, and exact search for small instances; the
    test suite measures the heuristics' gap against exact. *)

val norm_alpha : alpha:float -> float array -> float
(** [Σ_p L_p^α] — the objective every routine below minimizes.
    @param alpha power exponent, [> 1] (not validated: a sub-1 value
    merely makes the norm concave and the heuristics meaningless). *)

val makespan_of_loads : alpha:float -> energy:float -> float array -> float
(** [(Σ L_p^α / E)^(1/(α−1))] — the optimal common finish time for the
    given loads and budget.
    @param energy energy budget, [> 0].
    @raise Invalid_argument when [energy <= 0]. *)

val lpt : m:int -> float list -> int array
(** Largest-first greedy: place each job on the least-loaded processor —
    by convexity this also minimizes the resulting norm for every
    [α > 1].  Returns the processor index per job (input order).
    @param m processor count, [>= 1].
    @raise Invalid_argument when [m <= 0]. *)

val local_search : alpha:float -> m:int -> float list -> int array -> int array
(** Improve an assignment by single-job moves and pairwise swaps until a
    local optimum of the norm.  Terminates: every accepted step strictly
    decreases [Σ_p L_p^α] and there are finitely many assignments.  The
    input array is not mutated; indices in it must lie in [0 .. m-1]
    (callers pass {!lpt} output, which guarantees this). *)

val exact : alpha:float -> m:int -> float list -> int array
(** Exhaustive assignment search — the ground truth the test suite
    measures the heuristics' gap against.  O(m^n).
    @raise Invalid_argument when [n > 12] (the search would exceed
    [12^12] states). *)

val solve : alpha:float -> m:int -> energy:float -> Instance.t -> Schedule.t
(** LPT + local search, then constant-speed schedules meeting the common
    finish time: processor [p] runs its jobs back-to-back from time 0 at
    [L_p / M] where [M] is {!makespan_of_loads} of the final loads.
    @param energy energy budget, [> 0]; the schedule spends all of it.
    @raise Invalid_argument unless all releases are 0, or when
    [energy <= 0] or [m <= 0]. *)

val makespan : alpha:float -> m:int -> energy:float -> Instance.t -> float
(** Common finish time of {!solve}'s schedule — [0] for an empty
    instance.  Same preconditions as {!solve}.
    @raise Invalid_argument under exactly the conditions of {!solve}. *)
