(** Machine-readable benchmark artifacts ([BENCH_*.json]).

    Wraps a benchmark section in wall-clock ({!Obs_clock}) and
    allocation ([Gc.quick_stat]) measurement plus a counter-delta
    snapshot, and serializes the results in the fixed schema

    {v
{ "commit": "<sha>", "date": "<iso8601>",
  "results": [ { "name":    "<section>",
                 "wall_s":    1.23,
                 "allocs_mb": 4.56,
                 "counters": { "incmerge.merge_rounds": 42, ... } } ] }
    v}

    so successive CI runs are diffable by any JSON tool.  The perf
    trajectory of the repo is tracked by committing/uploading one such
    file per PR (this PR's is [BENCH_PR2.json]). *)

type result = {
  name : string;  (** section name, e.g. ["perf"] or ["fig1"] *)
  wall_s : float;  (** wall-clock seconds, monotonic clock *)
  allocs_mb : float;
      (** megabytes allocated on the OCaml heap during the section:
          minor + major − promoted words, times the word size *)
  counters : (string * int) list;
      (** {!Obs_metrics} counters that changed during the section,
          as deltas; empty when instrumentation is disabled *)
}

val measure : name:string -> (unit -> unit) -> result
(** [measure ~name f] runs [f ()] once and reports its cost.  The
    counter delta is computed from registry snapshots taken before and
    after, so concurrent updates from outside [f] would be attributed
    to it — run sections one at a time. *)

val result_to_json : result -> Obs_json.t
(** [result_to_json r] is one element of the [results] list above. *)

val to_json : commit:string -> date:string -> result list -> Obs_json.t
(** [to_json ~commit ~date results] assembles the full artifact.
    @param commit the git revision being measured (or ["unknown"])
    @param date an ISO-8601 UTC timestamp *)

val write_file : path:string -> commit:string -> date:string -> result list -> unit
(** [write_file ~path ~commit ~date results] writes the artifact as
    pretty-printed JSON, with a trailing newline, creating or
    truncating [path]. *)
