let span_aggregate events =
  (* name -> (calls, total_us, max_us), insertion-ordered by first use *)
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (ev : Obs_trace.event) ->
      match Hashtbl.find_opt tbl ev.Obs_trace.name with
      | None ->
        Hashtbl.replace tbl ev.Obs_trace.name (1, ev.Obs_trace.dur_us, ev.Obs_trace.dur_us);
        order := ev.Obs_trace.name :: !order
      | Some (n, total, mx) ->
        Hashtbl.replace tbl ev.Obs_trace.name
          (n + 1, total +. ev.Obs_trace.dur_us, Float.max mx ev.Obs_trace.dur_us))
    events;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  |> List.sort (fun (_, (_, ta, _)) (_, (_, tb, _)) -> compare tb ta)

let render (snap : Obs_metrics.snapshot) events =
  let b = Buffer.create 1024 in
  let nonzero = List.filter (fun (_, v) -> v <> 0) snap.Obs_metrics.counters in
  if nonzero <> [] then begin
    Buffer.add_string b "== counters ==\n";
    List.iter (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-36s %12d\n" name v)) nonzero
  end;
  if snap.Obs_metrics.gauges <> [] then begin
    Buffer.add_string b "== gauges ==\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-36s %12.6g\n" name v))
      snap.Obs_metrics.gauges
  end;
  if snap.Obs_metrics.histograms <> [] then begin
    Buffer.add_string b "== histograms ==\n";
    Buffer.add_string b
      (Printf.sprintf "%-36s %8s %12s %12s %12s %12s\n" "name" "count" "mean" "stddev" "min" "max");
    List.iter
      (fun (name, (s : Obs_metrics.histogram_stats)) ->
        Buffer.add_string b
          (Printf.sprintf "%-36s %8d %12.6g %12.6g %12.6g %12.6g\n" name s.Obs_metrics.count
             s.Obs_metrics.mean s.Obs_metrics.stddev s.Obs_metrics.min_v s.Obs_metrics.max_v))
      snap.Obs_metrics.histograms
  end;
  (match span_aggregate events with
  | [] -> ()
  | rows ->
    Buffer.add_string b "== spans ==\n";
    Buffer.add_string b (Printf.sprintf "%-36s %8s %12s %12s %12s\n" "name" "calls" "total_ms" "mean_ms" "max_ms");
    List.iter
      (fun (name, (calls, total_us, max_us)) ->
        Buffer.add_string b
          (Printf.sprintf "%-36s %8d %12.4f %12.4f %12.4f\n" name calls (total_us /. 1e3)
             (total_us /. 1e3 /. float_of_int calls)
             (max_us /. 1e3)))
      rows);
  if Buffer.length b = 0 then Buffer.add_string b "(no observations recorded)\n";
  Buffer.contents b
