(** The observability facade: metrics, tracing and timers behind one
    global on/off switch.

    This is the only module instrumented code should touch.  Usage
    pattern, at module initialization:

    {[
      let c_rounds = Obs.counter "incmerge.merge_rounds"
    ]}

    and on the measured path:

    {[
      Obs.span "incmerge.solve" @@ fun () ->
        ...
        Obs.add c_rounds merges_this_call;
        ...
    ]}

    {2 Disabled mode}

    Instrumentation is {e off} by default.  While off, every operation
    in this module short-circuits on a single boolean load — no clock
    read, no allocation, no registry access — so instrumented hot
    paths run at their uninstrumented speed (the benchmark harness
    verifies the whole-suite overhead stays under noise).  Turning the
    switch on ({!set_enabled}) activates all call sites at once.

    Handle creation ({!counter}, {!gauge}, {!histogram}) interns
    unconditionally, so handles made while disabled work once enabled.

    {2 Parallel domains}

    Counter and gauge updates are atomic (see {!Obs_metrics}) and
    record correctly from [Par] pool workers.  Trace spans and
    histograms use unsynchronized shared state, so {!span}, {!time}
    and {!observe} become no-ops on worker domains (they still run
    [f], of course) — the recorded trace reflects the main domain
    only, while counters aggregate across all domains.

    See {!Obs_metrics} for instrument semantics, {!Obs_trace} for the
    span model and Chrome export, {!Obs_report} for the text report,
    and {!Obs_bench} for benchmark artifacts. *)

val enabled : unit -> bool
(** [enabled ()] is the current state of the global switch. *)

val set_enabled : bool -> unit
(** [set_enabled b] turns instrumentation on or off, process-wide. *)

val reset : unit -> unit
(** [reset ()] zeroes all metrics and discards all trace events
    (handles stay valid).  Call before a measured region to get a
    clean report for just that region. *)

type counter = Obs_metrics.counter
type gauge = Obs_metrics.gauge
type histogram = Obs_metrics.histogram

val counter : string -> counter
(** [counter name] interns a counter handle (see
    {!Obs_metrics.counter}); independent of the enabled switch. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
(** [incr c] adds one — when enabled; otherwise does nothing. *)

val add : counter -> int -> unit
(** [add c k] adds [k] — when enabled.  Preferred in loops: count
    locally, [add] once. *)

val set : gauge -> float -> unit
(** [set g v] records [v] — when enabled. *)

val observe : histogram -> float -> unit
(** [observe h v] folds [v] into [h] — when enabled and on the main
    domain; otherwise does nothing. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a trace span named [name] (see
    {!Obs_trace.with_span}); when disabled, or on a [Par] worker
    domain, it is exactly [f ()]. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its duration in seconds into
    [h] — when enabled and on the main domain; otherwise exactly
    [f ()]. *)

val snapshot : unit -> Obs_metrics.snapshot
(** [snapshot ()] is {!Obs_metrics.snapshot} (always available, even
    while disabled — counters will simply read zero). *)

val trace_events : unit -> Obs_trace.event list
(** [trace_events ()] is {!Obs_trace.events}. *)

val metrics_report : unit -> string
(** [metrics_report ()] renders the current registry and spans with
    {!Obs_report.render}. *)

val trace_json_string : unit -> string
(** [trace_json_string ()] is the recorded trace serialized in Chrome
    [trace_event] format (see {!Obs_trace.to_json}). *)

val write_trace : string -> unit
(** [write_trace path] writes {!trace_json_string} to [path] followed
    by a newline, creating or truncating the file. *)
