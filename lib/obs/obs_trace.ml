(* Span-based tracing.

   A span is entered, nests freely, and on exit records one "complete"
   event (begin timestamp + duration).  Events are stored in a growable
   array and exported in Chrome trace_event format: complete events
   ("ph":"X") on one pid/tid nest purely by timestamp containment, which
   is exactly what about://tracing and Perfetto render as a flame
   graph. *)

type event = {
  name : string;
  ts_us : float;  (* start, microseconds since the trace epoch *)
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

type span = { s_name : string; t0 : int64; s_depth : int; s_args : (string * string) list }

let buf : event array ref = ref (Array.make 0 { name = ""; ts_us = 0.0; dur_us = 0.0; depth = 0; args = [] })
let len = ref 0
let max_events = ref 1_000_000
let dropped = ref 0
let depth_now = ref 0
let epoch = ref Int64.min_int

let clear () =
  buf := Array.make 0 { name = ""; ts_us = 0.0; dur_us = 0.0; depth = 0; args = [] };
  len := 0;
  dropped := 0;
  depth_now := 0;
  epoch := Int64.min_int

let set_max_events n = max_events := Stdlib.max 0 n

let push ev =
  if !len >= !max_events then incr dropped
  else begin
    if !len >= Array.length !buf then begin
      let cap = Stdlib.max 256 (2 * Array.length !buf) in
      let bigger = Array.make (Stdlib.min cap !max_events) ev in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- ev;
    incr len
  end

let enter ?(args = []) name =
  let t0 = Obs_clock.now_ns () in
  if !epoch = Int64.min_int then epoch := t0;
  let s = { s_name = name; t0; s_depth = !depth_now; s_args = args } in
  incr depth_now;
  s

let exit ?(args = []) s =
  let t1 = Obs_clock.now_ns () in
  depth_now := Stdlib.max 0 (!depth_now - 1);
  push
    {
      name = s.s_name;
      ts_us = Obs_clock.ns_to_us (Int64.sub s.t0 !epoch);
      dur_us = Obs_clock.ns_to_us (Int64.sub t1 s.t0);
      depth = s.s_depth;
      args = s.s_args @ args;
    }

let with_span ?args name f =
  let s = enter ?args name in
  Fun.protect ~finally:(fun () -> exit s) f

let events () = Array.to_list (Array.sub !buf 0 !len)

let dropped_events () = !dropped

let to_json () =
  let span_event ev =
    Obs_json.Obj
      [
        ("name", Obs_json.String ev.name);
        ("cat", Obs_json.String "pasched");
        ("ph", Obs_json.String "X");
        ("ts", Obs_json.Float ev.ts_us);
        ("dur", Obs_json.Float ev.dur_us);
        ("pid", Obs_json.Int 1);
        ("tid", Obs_json.Int 1);
        ( "args",
          Obs_json.Obj
            (("depth", Obs_json.Int ev.depth)
            :: List.map (fun (k, v) -> (k, Obs_json.String v)) ev.args) );
      ]
  in
  let metadata =
    Obs_json.Obj
      [
        ("name", Obs_json.String "process_name");
        ("ph", Obs_json.String "M");
        ("pid", Obs_json.Int 1);
        ("tid", Obs_json.Int 1);
        ("args", Obs_json.Obj [ ("name", Obs_json.String "pasched") ]);
      ]
  in
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List (metadata :: List.map span_event (events ())));
      ("displayTimeUnit", Obs_json.String "ms");
    ]
