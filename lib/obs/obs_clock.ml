(* Thin wrapper over the CLOCK_MONOTONIC stub that ships with bechamel,
   so every timestamp in the observability layer comes from one
   monotonic source (never wall time, which can step backwards). *)

let now_ns = Monotonic_clock.now

let now_us () = Int64.to_float (now_ns ()) /. 1e3

let ns_to_s ns = Int64.to_float ns /. 1e9

let ns_to_us ns = Int64.to_float ns /. 1e3

type stopwatch = int64

let start () = now_ns ()

let elapsed_ns sw = Int64.sub (now_ns ()) sw

let elapsed_us sw = ns_to_us (elapsed_ns sw)

let elapsed_s sw = ns_to_s (elapsed_ns sw)
