(** Human-readable rendering of an observability snapshot.

    Counterpart to the machine-readable exports ({!Obs_trace.to_json},
    {!Obs_bench.to_json}): a fixed-width text report meant for a
    terminal, printed by [pasched --metrics]. *)

val span_aggregate : Obs_trace.event list -> (string * (int * float * float)) list
(** [span_aggregate events] groups events by span name into
    [(name, (calls, total_us, max_us))], sorted by total duration,
    descending.  The per-call mean is [total_us /. calls]. *)

val render : Obs_metrics.snapshot -> Obs_trace.event list -> string
(** [render snapshot events] formats the nonzero counters, the touched
    gauges, the populated histograms and the span aggregates as
    sections of a text table.  Zero counters are omitted — after a run
    with instrumentation disabled the report is simply
    ["(no observations recorded)"], which is how tests observe the
    disabled mode. *)
