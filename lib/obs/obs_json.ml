type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let rec write_indented buf indent = function
  | List (_ :: _ as xs) ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (String.make (indent + 2) ' ');
        write_indented buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj (_ :: _ as kvs) ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (String.make (indent + 2) ' ');
        escape_to buf k;
        Buffer.add_string buf ": ";
        write_indented buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'
  | other -> write buf other

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  if pretty then write_indented buf 0 v else write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    (* encode one Unicode scalar value as UTF-8 *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "truncated escape";
         (match s.[!pos] with
         | '"' -> advance (); Buffer.add_char buf '"'
         | '\\' -> advance (); Buffer.add_char buf '\\'
         | '/' -> advance (); Buffer.add_char buf '/'
         | 'n' -> advance (); Buffer.add_char buf '\n'
         | 't' -> advance (); Buffer.add_char buf '\t'
         | 'r' -> advance (); Buffer.add_char buf '\r'
         | 'b' -> advance (); Buffer.add_char buf '\b'
         | 'f' -> advance (); Buffer.add_char buf '\012'
         | 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             (* surrogate pair *)
             if cp >= 0xD800 && cp <= 0xDBFF && !pos + 2 <= n && s.[!pos] = '\\'
                && !pos + 1 < n && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
             end
             else cp
           in
           add_utf8 buf cp
         | c -> error (Printf.sprintf "bad escape \\%C" c)));
        go ()
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then error "bad number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "at %d: trailing garbage" !pos) else Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at %d: %s" p msg)
  | exception Failure msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_string_val = function String s -> Some s | _ -> None
