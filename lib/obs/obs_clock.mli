(** Monotonic time source for the observability layer.

    All timers, spans and benchmark measurements in {!Obs} read this
    clock and no other, so durations are immune to wall-clock steps
    (NTP adjustments, manual changes).  The epoch is unspecified —
    typically boot time — so absolute values are only meaningful as
    differences.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via the C stub shipped
    with bechamel; resolution is nanoseconds, cost of a read is a few
    tens of nanoseconds. *)

val now_ns : unit -> int64
(** [now_ns ()] is the current monotonic time in nanoseconds since an
    unspecified epoch.  Non-decreasing across calls within a process. *)

val now_us : unit -> float
(** [now_us ()] is {!now_ns} converted to microseconds as a float (the
    unit Chrome's [trace_event] format expects in its [ts] field). *)

val ns_to_s : int64 -> float
(** [ns_to_s ns] converts a nanosecond count to seconds. *)

val ns_to_us : int64 -> float
(** [ns_to_us ns] converts a nanosecond count to microseconds. *)

type stopwatch
(** A started timer: the instant {!start} was called. *)

val start : unit -> stopwatch
(** [start ()] begins timing now. *)

val elapsed_ns : stopwatch -> int64
(** [elapsed_ns sw] is the nanoseconds elapsed since [start] created
    [sw].  Always [>= 0L]; calling it does not stop the stopwatch, so
    repeated reads give increasing values. *)

val elapsed_us : stopwatch -> float
(** [elapsed_us sw] is {!elapsed_ns} in microseconds. *)

val elapsed_s : stopwatch -> float
(** [elapsed_s sw] is {!elapsed_ns} in seconds. *)
