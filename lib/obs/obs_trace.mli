(** Span-based tracing with nesting, exported as Chrome [trace_event]
    JSON.

    A {e span} covers one dynamic extent — a solver call, a merge
    phase, a simulator run.  Spans nest: entering a span while another
    is open records the child at depth+1.  Each completed span becomes
    one {e complete event} ([ph = "X"]) with a begin timestamp and a
    duration in microseconds, all on one pid/tid, which
    [about://tracing] and {{:https://ui.perfetto.dev}Perfetto} render
    as a flame graph by timestamp containment.

    Like {!Obs_metrics} this module is unconditional — gating on the
    global enabled flag is {!Obs}'s job.  The event buffer grows
    geometrically up to {!set_max_events} (default one million);
    further events are counted in {!dropped_events} rather than
    recorded, so a runaway loop cannot exhaust memory.

    Timestamps come from {!Obs_clock} and are rebased to the first
    [enter] after a {!clear}, so traces start near [ts = 0]. *)

type event = {
  name : string;
  ts_us : float;  (** span start, microseconds since the trace epoch *)
  dur_us : float;  (** span duration in microseconds, [>= 0.] *)
  depth : int;  (** nesting depth at entry; 0 for a root span *)
  args : (string * string) list;  (** user key/value annotations *)
}
(** One completed span.  For any two events [a], [b] produced by
    well-bracketed spans on this single-threaded recorder, if
    [b.depth > a.depth] and their intervals overlap then [b]'s
    interval is contained in [a]'s. *)

type span
(** An open span: the token returned by {!enter}, to be passed to
    {!exit} exactly once. *)

val enter : ?args:(string * string) list -> string -> span
(** [enter name] opens a span and increments the nesting depth.
    @param args annotations attached to the eventual event. *)

val exit : ?args:(string * string) list -> span -> unit
(** [exit s] closes [s], decrements the depth, and records the event.
    Spans must be exited innermost-first; exiting out of order skews
    the recorded depths (but never raises).
    @param args appended to the annotations given at {!enter}. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span, exiting it even if
    [f] raises (the exception is re-raised). *)

val events : unit -> event list
(** [events ()] lists completed spans in completion order (children
    before their parents, since children exit first). *)

val clear : unit -> unit
(** [clear ()] discards all events, resets the depth and the dropped
    count, and re-arms the epoch to the next {!enter}. *)

val set_max_events : int -> unit
(** [set_max_events n] caps the buffer at [n] events ([n >= 0];
    default 1_000_000).  Events beyond the cap are dropped, not
    recorded. *)

val dropped_events : unit -> int
(** [dropped_events ()] is how many spans were discarded because the
    buffer was full since the last {!clear}. *)

val to_json : unit -> Obs_json.t
(** [to_json ()] is the trace as a Chrome [trace_event] document: an
    object with a [traceEvents] list (one process-name metadata event
    followed by one ["ph" = "X"] event per completed span, each
    carrying [name]/[cat]/[ts]/[dur]/[pid]/[tid] and its [depth] under
    [args]) and a [displayTimeUnit].  Load the serialized form in
    [about://tracing] or Perfetto. *)
