(** Named counters, gauges and histograms with a global registry.

    Instruments are {e interned}: [counter "x"] returns the same
    handle every time, so modules create their handles once at
    initialization and the hot path is a single [Atomic] operation —
    no locking, no hashing, no allocation.

    {2 Domain-safety guarantee (changed when [pasched.par] arrived)}

    Counter and gauge updates are {e lock-free and lossless} under
    OCaml 5 parallel domains: increments are [Atomic.fetch_and_add],
    so concurrent [incr]/[add] from pool workers never drop counts,
    and [set]/[value] never observe torn values.  On OCaml 4.x the
    stdlib implements [Atomic] as plain loads and stores, so the
    sequential-fallback build keeps the historical zero-cost
    plain-int path — the stronger guarantee costs nothing where it
    is not needed.

    Two deliberate limits remain:
    {ul
    {- {e interning is main-domain-only}: create handles at module
       initialization (as every instrumented module does), not from
       inside a [Par] worker — the registry tables are unsynchronized;}
    {- {e histograms are best-effort under domains}: [observe] updates
       several fields non-atomically, so racing observations can
       under-count or misreport extrema (never corrupt memory).  The
       library only observes histograms from the main domain.}}

    This module is {e unconditional}: updates always land.  The
    enabled/disabled policy (and hence the zero-cost-when-off
    guarantee) lives in the {!Obs} facade, which gates every call on
    one boolean.

    Naming convention used throughout the library:
    ["<module>.<quantity>"], e.g. ["incmerge.merge_rounds"] —
    {!Obs_report} and tests group by the prefix before the dot. *)

type counter
(** A monotonically increasing integer (events, iterations, items). *)

type gauge
(** A float that holds its last set value (sizes, levels). *)

type histogram
(** A running summary of observed floats: count, sum, sum of squares,
    min and max (so mean and standard deviation are derivable without
    storing samples). *)

type histogram_stats = {
  count : int;
  total : float;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min_v : float;
  max_v : float;
}
(** Derived view of a histogram.  All fields are [0.0] when
    [count = 0]. *)

val counter : string -> counter
(** [counter name] interns and returns the counter registered under
    [name], creating it (at zero) on first use. *)

val incr : counter -> unit
(** [incr c] adds one, atomically. *)

val add : counter -> int -> unit
(** [add c k] adds [k] atomically (negative [k] is permitted but
    unconventional). *)

val value : counter -> int
(** [value c] reads the current count. *)

val counter_name : counter -> string

val gauge : string -> gauge
(** [gauge name] interns the gauge registered under [name]. *)

val set : gauge -> float -> unit
(** [set g v] records [v] as the gauge's current value. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

val histogram : string -> histogram
(** [histogram name] interns the histogram registered under [name]. *)

val observe : histogram -> float -> unit
(** [observe h v] folds [v] into the running summary. *)

val histogram_name : histogram -> string

val stats : histogram -> histogram_stats
(** [stats h] is the current summary of [h]. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}
(** A point-in-time copy of the registry, each section sorted by name.
    Counters appear even at zero (their registration is a static
    fact); gauges that were never [set] and histograms with no
    observations are omitted. *)

val snapshot : unit -> snapshot
(** [snapshot ()] copies the registry.  O(instruments); safe to call
    repeatedly (e.g. for before/after deltas in {!Obs_bench}). *)

val reset : unit -> unit
(** [reset ()] zeroes every registered instrument without forgetting
    the handles, so previously interned handles remain valid. *)
