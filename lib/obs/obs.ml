(* The facade: one global switch in front of the unconditional
   machinery in Obs_metrics / Obs_trace.

   Every operation here starts with [if not !on then ...], so with
   instrumentation disabled an instrumented hot path pays one load and
   one conditional branch per call site — nothing is allocated, no
   clock is read, no hash table is touched.  Instrumented modules
   additionally batch loop-iteration counts into a local int and call
   [add] once per solve, so even the branch is off the innermost
   loops. *)

let on = ref false

let enabled () = !on
let set_enabled b = on := b

let reset () =
  Obs_metrics.reset ();
  Obs_trace.clear ()

type counter = Obs_metrics.counter
type gauge = Obs_metrics.gauge
type histogram = Obs_metrics.histogram

let counter = Obs_metrics.counter
let gauge = Obs_metrics.gauge
let histogram = Obs_metrics.histogram

let incr c = if !on then Obs_metrics.incr c
let add c k = if !on then Obs_metrics.add c k
let set g v = if !on then Obs_metrics.set g v

(* Counters and gauges are atomic, so they record from pool workers
   too.  Histograms and trace spans update unsynchronized shared state
   (several mutable fields; the global span buffer), so on a worker
   domain they degrade to no-ops rather than race — the main domain
   still sees its own spans and timings, and parallel sections appear
   in the metrics via the atomic counters. *)
let main_domain () = not (Par.on_worker_domain ())

let observe h v = if !on && main_domain () then Obs_metrics.observe h v

let span ?args name f =
  if !on && main_domain () then Obs_trace.with_span ?args name f else f ()

let time h f =
  if !on && main_domain () then begin
    let sw = Obs_clock.start () in
    let finally () = Obs_metrics.observe h (Obs_clock.elapsed_s sw) in
    Fun.protect ~finally f
  end
  else f ()

let snapshot = Obs_metrics.snapshot
let trace_events = Obs_trace.events

let metrics_report () = Obs_report.render (Obs_metrics.snapshot ()) (Obs_trace.events ())

let trace_json_string () = Obs_json.to_string (Obs_trace.to_json ())

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (trace_json_string ());
      output_char oc '\n')
