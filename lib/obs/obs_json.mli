(** Minimal JSON values: enough to emit Chrome traces and benchmark
    artifacts, and to parse them back in tests — with no dependency on
    an external JSON library.

    The printer always produces syntactically valid JSON: strings are
    escaped per RFC 8259, control characters become [\uXXXX] escapes,
    and non-finite floats (which JSON cannot represent) are mapped to
    [null] (NaN) or [±1e999] (infinities, which parse back as such).

    The parser accepts any RFC 8259 document, including [\uXXXX]
    escapes and surrogate pairs (decoded to UTF-8).  It is meant for
    round-trip testing and small artifacts, not for streaming. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Object fields in insertion order; duplicate keys are kept
          as-is (the accessors return the first). *)

val to_string : ?pretty:bool -> t -> string
(** [to_string v] serializes [v] to a valid JSON document.
    @param pretty when [true], indent with two spaces per level
    (default [false]: single line, no spaces). *)

val of_string : string -> (t, string) result
(** [of_string s] parses one JSON document occupying all of [s]
    (surrounding whitespace allowed).
    @return [Error msg] — with a character position — on malformed
    input or trailing garbage; never raises. *)

val member : string -> t -> t option
(** [member key v] is the value of field [key] if [v] is an [Obj]
    containing it, else [None]. *)

val to_list : t -> t list option
(** [to_list v] is the elements if [v] is a [List]. *)

val to_float : t -> float option
(** [to_float v] is the numeric value of an [Int] or [Float]. *)

val to_int : t -> int option
(** [to_int v] is the value of an [Int] (floats are not coerced). *)

val to_string_val : t -> string option
(** [to_string_val v] is the payload of a [String]. *)
