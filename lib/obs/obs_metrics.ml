(* Named instruments backed by a global registry.

   Handles are interned once (typically at module initialization, on
   the main domain) and then updated through Atomic cells: no lock, no
   hash lookup on the hot path, and — since pasched.par started running
   solver code on worker domains — no lost increments either.  On
   OCaml 4.x the stdlib's Atomic is implemented as plain loads and
   stores (the runtime is single-threaded), so the fallback build keeps
   the historical zero-cost plain-int path; on OCaml 5 the same calls
   compile to real atomic read-modify-writes.

   The interning tables themselves are not domain-safe: handle creation
   must stay on the main domain (module-initialization time in
   practice), which snapshot/reset also assume. *)

type counter = { c_name : string; c_count : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t; g_touched : bool Atomic.t }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

type histogram_stats = {
  count : int;
  total : float;
  mean : float;
  stddev : float;
  min_v : float;
  max_v : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_count = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = Atomic.incr c.c_count
let add c k = ignore (Atomic.fetch_and_add c.c_count k)
let value c = Atomic.get c.c_count
let counter_name c = c.c_name

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = Atomic.make 0.0; g_touched = Atomic.make false } in
    Hashtbl.replace gauges name g;
    g

let set g v =
  Atomic.set g.g_value v;
  Atomic.set g.g_touched true

let gauge_value g = Atomic.get g.g_value
let gauge_name g = g.g_name

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; n = 0; sum = 0.0; sumsq = 0.0; lo = Float.infinity; hi = Float.neg_infinity } in
    Hashtbl.replace histograms name h;
    h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.sumsq <- h.sumsq +. (v *. v);
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let histogram_name h = h.h_name

let stats h =
  if h.n = 0 then { count = 0; total = 0.0; mean = 0.0; stddev = 0.0; min_v = 0.0; max_v = 0.0 }
  else begin
    let nf = float_of_int h.n in
    let mean = h.sum /. nf in
    let var = Float.max 0.0 ((h.sumsq /. nf) -. (mean *. mean)) in
    { count = h.n; total = h.sum; mean; stddev = sqrt var; min_v = h.lo; max_v = h.hi }
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  {
    counters =
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_count) :: acc) counters []
      |> List.sort by_name;
    gauges =
      Hashtbl.fold
        (fun name g acc -> if Atomic.get g.g_touched then (name, Atomic.get g.g_value) :: acc else acc)
        gauges []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold (fun name h acc -> if h.n > 0 then (name, stats h) :: acc else acc) histograms []
      |> List.sort by_name;
  }

let reset () =
  Hashtbl.iter (fun _ c -> Atomic.set c.c_count 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0.0;
      Atomic.set g.g_touched false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.sumsq <- 0.0;
      h.lo <- Float.infinity;
      h.hi <- Float.neg_infinity)
    histograms
