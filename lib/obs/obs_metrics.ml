(* Named instruments backed by a global registry.

   Handles are interned once (typically at module initialization) and
   then updated by plain mutable-field writes: no lock, no allocation,
   no hash lookup on the hot path.  OCaml's memory model makes each
   such write atomic; under parallel domains concurrent increments may
   lose updates but can never corrupt a value or the registry, which is
   the right trade-off for best-effort telemetry. *)

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable value : float; mutable touched : bool }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

type histogram_stats = {
  count : int;
  total : float;
  mean : float;
  stddev : float;
  min_v : float;
  max_v : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_count = 0 } in
    Hashtbl.replace counters name c;
    c

let incr c = c.c_count <- c.c_count + 1
let add c k = c.c_count <- c.c_count + k
let value c = c.c_count
let counter_name c = c.c_name

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0.0; touched = false } in
    Hashtbl.replace gauges name g;
    g

let set g v =
  g.value <- v;
  g.touched <- true

let gauge_value g = g.value
let gauge_name g = g.g_name

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; n = 0; sum = 0.0; sumsq = 0.0; lo = Float.infinity; hi = Float.neg_infinity } in
    Hashtbl.replace histograms name h;
    h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.sumsq <- h.sumsq +. (v *. v);
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let histogram_name h = h.h_name

let stats h =
  if h.n = 0 then { count = 0; total = 0.0; mean = 0.0; stddev = 0.0; min_v = 0.0; max_v = 0.0 }
  else begin
    let nf = float_of_int h.n in
    let mean = h.sum /. nf in
    let var = Float.max 0.0 ((h.sumsq /. nf) -. (mean *. mean)) in
    { count = h.n; total = h.sum; mean; stddev = sqrt var; min_v = h.lo; max_v = h.hi }
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  {
    counters =
      Hashtbl.fold (fun name c acc -> (name, c.c_count) :: acc) counters [] |> List.sort by_name;
    gauges =
      Hashtbl.fold (fun name g acc -> if g.touched then (name, g.value) :: acc else acc) gauges []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold (fun name h acc -> if h.n > 0 then (name, stats h) :: acc else acc) histograms []
      |> List.sort by_name;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c_count <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0.0;
      g.touched <- false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.sumsq <- 0.0;
      h.lo <- Float.infinity;
      h.hi <- Float.neg_infinity)
    histograms
