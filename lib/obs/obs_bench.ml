type result = {
  name : string;
  wall_s : float;
  allocs_mb : float;
  counters : (string * int) list;
}

let allocated_words (g : Gc.stat) = g.Gc.minor_words +. g.Gc.major_words -. g.Gc.promoted_words

let counter_delta before after =
  (* both snapshots are sorted by name; keep counters that moved *)
  let tbl = Hashtbl.create 32 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) before;
  List.filter_map
    (fun (name, v) ->
      let prior = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      if v <> prior then Some (name, v - prior) else None)
    after

let measure ~name f =
  let snap_before = (Obs_metrics.snapshot ()).Obs_metrics.counters in
  let gc_before = Gc.quick_stat () in
  let sw = Obs_clock.start () in
  f ();
  let wall_s = Obs_clock.elapsed_s sw in
  let gc_after = Gc.quick_stat () in
  let snap_after = (Obs_metrics.snapshot ()).Obs_metrics.counters in
  let words = allocated_words gc_after -. allocated_words gc_before in
  {
    name;
    wall_s;
    allocs_mb = words *. float_of_int (Sys.word_size / 8) /. 1e6;
    counters = counter_delta snap_before snap_after;
  }

let result_to_json r =
  Obs_json.Obj
    [
      ("name", Obs_json.String r.name);
      ("wall_s", Obs_json.Float r.wall_s);
      ("allocs_mb", Obs_json.Float r.allocs_mb);
      ("counters", Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.Int v)) r.counters));
    ]

let to_json ~commit ~date results =
  Obs_json.Obj
    [
      ("commit", Obs_json.String commit);
      ("date", Obs_json.String date);
      ("results", Obs_json.List (List.map result_to_json results));
    ]

let write_file ~path ~commit ~date results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs_json.to_string ~pretty:true (to_json ~commit ~date results));
      output_char oc '\n')
