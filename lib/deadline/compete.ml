type summary = {
  algorithm : string;
  mean_ratio : float;
  max_ratio : float;
  theoretical_bound : float;
  trials : int;
}

let avr_bound ~alpha = (2.0 ** (alpha -. 1.0)) *. (alpha ** alpha)
let oa_bound ~alpha = alpha ** alpha

let measure ~seed ~trials ~n ~alpha () =
  let model = Power_model.alpha alpha in
  let ratios_avr = ref [] and ratios_oa = ref [] in
  for t = 1 to trials do
    let triples =
      Workload.deadline_jobs ~seed:(seed + t) ~n ~work:(0.5, 3.0) ~slack:(0.5, 4.0)
        (Workload.Poisson 1.0)
    in
    let jobs = Djob.of_triples triples in
    ratios_avr := Avr.competitive_vs_yds model jobs :: !ratios_avr;
    ratios_oa := Optimal_available.competitive_vs_yds model jobs :: !ratios_oa
  done;
  let summarize name ratios bound =
    let arr = Array.of_list ratios in
    {
      algorithm = name;
      mean_ratio = Stats.mean arr;
      max_ratio = Stats.maximum arr;
      theoretical_bound = bound;
      trials;
    }
  in
  [
    summarize "AVR" !ratios_avr (avr_bound ~alpha);
    summarize "OA" !ratios_oa (oa_bound ~alpha);
  ]

(* Windowed streaming variant: pull [window]-job chunks off a trace,
   solve each chunk offline (YDS) and online (AVR, OA), and accumulate
   the per-window ratios in Welford state.  Only one window is ever
   resident, so this scales to arbitrarily long traces; ratio
   statistics are exact (mean/max need no quantile machinery). *)
let measure_stream ?(slack = (0.5, 4.0)) ~seed ~windows ~window ~alpha stream =
  if windows <= 0 then invalid_arg "Compete.measure_stream: windows <= 0";
  if window < 2 then invalid_arg "Compete.measure_stream: window < 2";
  let model = Power_model.alpha alpha in
  let deadlined = Workload.Stream.with_deadlines ~seed ~slack stream in
  let avr_w = Streaming_metrics.Welford.create () in
  let oa_w = Streaming_metrics.Welford.create () in
  let exhausted = ref false in
  let next_window () =
    let rec go acc k =
      if k = 0 then List.rev acc
      else
        match deadlined () with
        | None ->
          exhausted := true;
          List.rev acc
        | Some ((j : Job.t), deadline) ->
          go (Djob.make ~id:j.Job.id ~release:j.Job.release ~deadline ~work:j.Job.work :: acc) (k - 1)
    in
    go [] window
  in
  let w = ref 0 in
  while !w < windows && not !exhausted do
    let jobs = next_window () in
    (* a short trailing window is still a valid instance if it has
       enough jobs for a ratio to mean anything *)
    if List.length jobs >= 2 then begin
      Streaming_metrics.Welford.add avr_w (Avr.competitive_vs_yds model jobs);
      Streaming_metrics.Welford.add oa_w (Optimal_available.competitive_vs_yds model jobs)
    end;
    incr w
  done;
  let summarize name acc bound =
    {
      algorithm = name;
      mean_ratio = Streaming_metrics.Welford.mean acc;
      max_ratio = Streaming_metrics.Welford.maximum acc;
      theoretical_bound = bound;
      trials = Streaming_metrics.Welford.count acc;
    }
  in
  [
    summarize "AVR" avr_w (avr_bound ~alpha);
    summarize "OA" oa_w (oa_bound ~alpha);
  ]
