(** Empirical competitive-ratio measurement for the online deadline
    algorithms, against the offline optimum (YDS). *)

type summary = {
  algorithm : string;
  mean_ratio : float;
  max_ratio : float;
  theoretical_bound : float;
  trials : int;
}

val avr_bound : alpha:float -> float
(** [2^(α−1) · α^α] (Yao et al. / Bansal et al.). *)

val oa_bound : alpha:float -> float
(** [α^α]. *)

val measure :
  seed:int -> trials:int -> n:int -> alpha:float -> unit -> summary list
(** Random instances via {!Workload.deadline_jobs}; returns summaries
    for AVR and OA.  Every measured ratio is checked against the
    theoretical bound by the caller (tests). *)

val measure_stream :
  ?slack:float * float ->
  seed:int ->
  windows:int ->
  window:int ->
  alpha:float ->
  Workload.Stream.t ->
  summary list
(** Trace-scale variant: pull up to [windows] chunks of [window] jobs
    off the stream (deadlines derived via
    {!Workload.Stream.with_deadlines} with the given [slack] range),
    solve each chunk offline (YDS) and online (AVR, OA), and summarize
    the per-window ratios with constant-memory Welford accumulators.
    [trials] in each summary is the number of windows actually
    measured (a trailing window needs at least 2 jobs to count; the
    stream may run dry early).
    @raise Invalid_argument when [windows <= 0] or [window < 2]. *)
