let c_intervals = Obs.counter "yds.intervals_peeled"
let c_candidates = Obs.counter "yds.candidate_intervals"
let c_segments = Obs.counter "yds.edf_segments"

type t = {
  speeds : (int * float) list;
  segments : (int * Speed_profile.segment) list;
  energy : float;
}

type work_item = { id : int; mutable release : float; mutable deadline : float; work : float }

let candidate_intervals items =
  let points =
    List.concat_map (fun it -> [ it.release; it.deadline ]) items
    |> List.sort_uniq compare
  in
  let rec pairs = function
    | [] -> []
    | t1 :: rest -> List.filter_map (fun t2 -> if t2 > t1 then Some (t1, t2) else None) rest @ pairs rest
  in
  pairs points

let intensity items (t1, t2) =
  let w =
    List.fold_left
      (fun acc it -> if it.release >= t1 -. 1e-12 && it.deadline <= t2 +. 1e-12 then acc +. it.work else acc)
      0.0 items
  in
  w /. (t2 -. t1)

(* assign YDS speeds by repeated critical-interval extraction *)
let assign_speeds jobs =
  let items =
    List.map (fun (j : Djob.t) -> { id = j.Djob.id; release = j.Djob.release; deadline = j.Djob.deadline; work = j.Djob.work }) jobs
  in
  let speeds = Hashtbl.create 16 in
  let remaining = ref items in
  while !remaining <> [] do
    Obs.incr c_intervals;
    let candidates = candidate_intervals !remaining in
    Obs.add c_candidates (List.length candidates);
    let best =
      List.fold_left
        (fun acc iv ->
          let g = intensity !remaining iv in
          match acc with Some (_, g') when g' >= g -> acc | _ -> Some (iv, g))
        None candidates
    in
    match best with
    | None -> remaining := [] (* unreachable: non-empty items give intervals *)
    | Some ((t1, t2), g) ->
      let inside it = it.release >= t1 -. 1e-12 && it.deadline <= t2 +. 1e-12 in
      List.iter (fun it -> if inside it then Hashtbl.replace speeds it.id g) !remaining;
      remaining := List.filter (fun it -> not (inside it)) !remaining;
      let len = t2 -. t1 in
      List.iter
        (fun it ->
          let collapse t = if t <= t1 then t else if t >= t2 then t -. len else t1 in
          it.release <- collapse it.release;
          it.deadline <- collapse it.deadline)
        !remaining
  done;
  speeds

(* preemptive EDF execution where each job runs at its assigned speed *)
let edf_segments jobs speeds =
  let n = List.length jobs in
  ignore n;
  let arr = List.sort (fun (a : Djob.t) b -> compare a.Djob.release b.Djob.release) jobs in
  let pending = ref [] in
  (* (djob, remaining work) sorted by deadline *)
  let add j rem = pending := List.sort (fun ((a : Djob.t), _) (b, _) -> compare (a.Djob.deadline, a.Djob.id) (b.Djob.deadline, b.Djob.id)) ((j, rem) :: !pending) in
  let segments = ref [] in
  let rec go now upcoming =
    match (!pending, upcoming) with
    | [], [] -> ()
    | [], (j : Djob.t) :: rest ->
      add j j.Djob.work;
      go (Float.max now j.Djob.release) rest
    | (j, rem) :: others, _ ->
      let speed = match Hashtbl.find_opt speeds j.Djob.id with Some s -> s | None -> Djob.density j in
      let finish_at = now +. (rem /. speed) in
      let next_arrival =
        match upcoming with (u : Djob.t) :: _ -> u.Djob.release | [] -> Float.infinity
      in
      if finish_at <= next_arrival +. 1e-15 then begin
        if finish_at > now then
          segments := (j.Djob.id, { Speed_profile.t0 = now; t1 = finish_at; speed }) :: !segments;
        pending := others;
        go finish_at upcoming
      end
      else begin
        let u, rest = match upcoming with u :: r -> (u, r) | [] -> assert false in
        let ran = (next_arrival -. now) *. speed in
        if next_arrival > now then
          segments := (j.Djob.id, { Speed_profile.t0 = now; t1 = next_arrival; speed }) :: !segments;
        pending := (j, rem -. ran) :: others;
        add u u.Djob.work;
        go next_arrival rest
      end
  in
  go 0.0 arr;
  List.rev !segments

let solve model jobs =
  Obs.span "yds.solve" @@ fun () ->
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (j : Djob.t) ->
      if Hashtbl.mem seen j.Djob.id then invalid_arg "Yds.solve: duplicate job id";
      Hashtbl.add seen j.Djob.id ())
    jobs;
  let speeds = assign_speeds jobs in
  let segments = edf_segments jobs speeds in
  Obs.add c_segments (List.length segments);
  let energy =
    List.fold_left
      (fun acc (j : Djob.t) ->
        let s = Hashtbl.find speeds j.Djob.id in
        acc +. Power_model.energy_run model ~work:j.Djob.work ~speed:s)
      0.0 jobs
  in
  { speeds = Hashtbl.fold (fun k v acc -> (k, v) :: acc) speeds []; segments; energy }

let speed_of t id = List.assoc id t.speeds

let feasible jobs t =
  let by_id = Hashtbl.create 16 in
  List.iter (fun (j : Djob.t) -> Hashtbl.replace by_id j.Djob.id j) jobs;
  (* segments must be disjoint and time-ordered *)
  let sorted = List.sort (fun (_, a) (_, b) -> compare a.Speed_profile.t0 b.Speed_profile.t0) t.segments in
  let rec disjoint = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      b.Speed_profile.t0 >= a.Speed_profile.t1 -. 1e-9 && disjoint rest
    | _ -> true
  in
  let windows_ok =
    List.for_all
      (fun (id, seg) ->
        match Hashtbl.find_opt by_id id with
        | None -> false
        | Some j ->
          seg.Speed_profile.t0 >= j.Djob.release -. 1e-9
          && seg.Speed_profile.t1 <= j.Djob.deadline +. 1e-9)
      t.segments
  in
  let work_done = Hashtbl.create 16 in
  List.iter
    (fun (id, seg) ->
      let w = (seg.Speed_profile.t1 -. seg.Speed_profile.t0) *. seg.Speed_profile.speed in
      Hashtbl.replace work_done id (w +. Option.value ~default:0.0 (Hashtbl.find_opt work_done id)))
    t.segments;
  let all_work =
    List.for_all
      (fun (j : Djob.t) ->
        match Hashtbl.find_opt work_done j.Djob.id with
        | None -> false
        | Some w -> Float.abs (w -. j.Djob.work) <= 1e-6 *. (1.0 +. j.Djob.work))
      jobs
  in
  disjoint sorted && windows_ok && all_work

let intensity_lower_bound model jobs =
  let items =
    List.map (fun (j : Djob.t) -> { id = j.Djob.id; release = j.Djob.release; deadline = j.Djob.deadline; work = j.Djob.work }) jobs
  in
  List.fold_left
    (fun acc ((t1, t2) as iv) ->
      let g = intensity items iv in
      Float.max acc ((t2 -. t1) *. Power_model.power model g))
    0.0 (candidate_intervals items)
