(** Seeded splittable PRNG (SplitMix64).

    The fuzzing harness needs two things [Random.State] does not give
    cleanly: O(1) construction of an independent stream for every
    (seed, case-index) pair without shared mutable history, and a
    [split] that lets a generator hand disjoint randomness to its
    sub-generators so inserting a new draw upstream does not perturb
    every draw downstream.  SplitMix64 (Steele, Lea & Flood, OOPSLA'14)
    provides both with a 64-bit state and a per-stream gamma. *)

type t

val make : int -> t
(** Stream seeded from the integer (any value is fine, including 0). *)

val of_pair : int -> int -> t
(** Independent stream for a (seed, index) pair — the per-case streams
    of the fuzz loop.  Distinct pairs give unrelated streams. *)

val split : t -> t
(** A fresh stream statistically independent of the parent; the parent
    advances by one draw. *)

val copy : t -> t

val bits64 : t -> int64
(** Next 64 raw bits; advances the state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)] (53-bit resolution). *)

val bool : t -> bool
