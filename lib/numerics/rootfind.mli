(** One-dimensional root finding on floats.

    The speed-scaling solvers reduce many subproblems ("what energy makes
    these two blocks merge?", "what speed exhausts the budget?") to
    finding a zero of a monotone function; these are the workhorses.

    Failures are typed so the guard layer can classify them:
    {!No_bracket} carries the rejected endpoints, {!No_convergence}
    the iteration count and final residual.  Every iterative loop
    calls [Fault.tick] (the guard deadline/injection hook) and the
    tolerance/iteration budgets honour [Fault.tol_scale]/
    [Fault.cap_iters], all of which are free when no hooks are
    armed. *)

exception No_bracket of { lo : float; hi : float; f_lo : float; f_hi : float }
(** Raised when a bracketing step cannot find a sign change; carries
    the final endpoints and their function values. *)

exception No_convergence of { iters : int; residual : float }
(** Raised when an iteration budget is exhausted before the tolerance
    is met; [residual] is [|f x|] at the last iterate. *)

val bisect : f:(float -> float) -> lo:float -> hi:float -> ?eps:float -> ?max_iter:int -> unit -> float
(** Plain bisection.  Requires [f lo] and [f hi] to have opposite signs
    (zero counts as either).  [eps] is the interval-width tolerance
    (default [1e-12] relative to magnitude).
    @raise No_bracket when the endpoints do not bracket a root.
    @raise No_convergence when [max_iter] halvings leave the interval
    wider than the tolerance (only reachable under a tightened cap). *)

val brent :
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  ?flo:float ->
  ?fhi:float ->
  ?eps:float ->
  ?max_iter:int ->
  unit ->
  float
(** Brent's method (inverse quadratic interpolation + secant + bisection);
    superlinear on smooth functions, never worse than bisection.

    [flo]/[fhi] optionally pass [f lo]/[f hi] values the caller already
    computed (typically during bracketing), saving the two endpoint
    evaluations; the iteration sequence — hence the returned bits — is
    identical to recomputing them.
    @param eps interval-width tolerance relative to the iterate's
    magnitude (default [1e-12]).
    @raise No_bracket when the endpoints do not bracket a root.
    @raise No_convergence when the iteration budget is exhausted. *)

val newton :
  f:(float -> float) -> df:(float -> float) -> x0:float -> ?eps:float -> ?max_iter:int -> unit -> float
(** Newton iteration from [x0].
    @raise No_convergence on a vanishing derivative, a non-finite
    step, or an exhausted iteration budget. *)

val newton_bracketed :
  f_df:(float -> float * float) ->
  lo:float ->
  hi:float ->
  ?x0:float ->
  ?eps:float ->
  ?max_iter:int ->
  unit ->
  float
(** Safeguarded Newton for a {e decreasing} [f] on a bracket the caller
    has already established: [f lo >= 0 >= f hi], with neither endpoint
    (re-)evaluated here.  [f_df x] returns [(f x, f' x)] from one fused
    evaluation — the intended callers get the derivative for free from
    the same loop that computes the value.  Every iterate tightens the
    bracket; a Newton step that leaves it, or a flat/non-finite
    derivative, falls back to bisection, so the method is never worse
    than bisection while typically converging quadratically.

    @param x0 initial iterate (clamped into [(lo, hi)]; default the
    bracket midpoint).
    @param eps step-size tolerance relative to the iterate's magnitude
    (default [1e-12]).
    @raise No_convergence when [max_iter] evaluations do not meet the
    tolerance (only reachable under a tightened fault cap). *)

val bracket_outward :
  f:(float -> float) -> lo:float -> hi:float -> ?grow:float -> ?max_iter:int -> unit -> float * float
(** Expand [[lo, hi]] geometrically until the endpoints bracket a sign
    change.  @raise No_bracket if none is found. *)

val find_root : f:(float -> float) -> lo:float -> hi:float -> ?eps:float -> unit -> float
(** Convenience: expand the bracket outward if needed, then Brent. *)
