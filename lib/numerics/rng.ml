(* SplitMix64 after Steele, Lea & Flood (OOPSLA'14).  The state walks an
   arithmetic sequence with odd step [gamma]; outputs are a bijective
   mix of the state, and [split] derives a child whose (state, gamma)
   come from two further draws of the parent, mixed independently. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

(* Stafford's "variant 13" 64-bit finalizer. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gammas must be odd; mixing with a different finalizer constant keeps
   the child stream decorrelated from the parent's outputs. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logor z 1L

let next_state t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_state t)

let make seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let of_pair seed index =
  let t = make seed in
  (* absorb the index as one extra state step of index-dependent size *)
  { state = mix64 (Int64.add t.state (mix64 (Int64.of_int index))); gamma = golden_gamma }

let split t =
  let s = bits64 t in
  let g = mix_gamma (next_state t) in
  { state = s; gamma = g }

let copy t = { state = t.state; gamma = t.gamma }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* shift keeps the value non-negative; modulo bias is irrelevant at
     test-generation bounds (« 2^62) *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53 in
  u *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
