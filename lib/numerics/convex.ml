let is_convex_gen ~strict ~f ~lo ~hi ~n =
  if n < 2 || hi <= lo then invalid_arg "Convex.is_convex_on_samples";
  let h = (hi -. lo) /. float_of_int n in
  let ok = ref true in
  (* tolerance scaled to the magnitude of the values involved *)
  for i = 0 to n - 2 do
    let a = lo +. (float_of_int i *. h) in
    let b = a +. (2.0 *. h) in
    let m = a +. h in
    let fa = f a and fb = f b and fm = f m in
    let avg = 0.5 *. (fa +. fb) in
    let slack = 1e-9 *. (1.0 +. Float.abs fa +. Float.abs fb) in
    if strict then begin
      if fm >= avg -. slack then ok := false
    end
    else if fm > avg +. slack then ok := false
  done;
  !ok

let is_convex_on_samples ~f ~lo ~hi ~n = is_convex_gen ~strict:false ~f ~lo ~hi ~n
let is_strictly_convex_on_samples ~f ~lo ~hi ~n = is_convex_gen ~strict:true ~f ~lo ~hi ~n

let ternary_min ~f ~lo ~hi ?(eps = 1e-12) ?(max_iter = 300) () =
  Fault.enter "convex.min";
  let eps = eps *. Fault.tol_scale () in
  let max_iter = Fault.cap_iters max_iter in
  let lo = ref lo and hi = ref hi in
  let i = ref 0 in
  while !hi -. !lo > eps *. (1.0 +. Float.abs !lo +. Float.abs !hi) && !i < max_iter do
    Fault.tick ();
    let m1 = !lo +. ((!hi -. !lo) /. 3.0) in
    let m2 = !hi -. ((!hi -. !lo) /. 3.0) in
    if f m1 <= f m2 then hi := m2 else lo := m1;
    incr i
  done;
  0.5 *. (!lo +. !hi)

let golden_min ~f ~lo ~hi ?(eps = 1e-12) ?(max_iter = 300) () =
  Fault.enter "convex.min";
  let eps = eps *. Fault.tol_scale () in
  let max_iter = Fault.cap_iters max_iter in
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let i = ref 0 in
  while !b -. !a > eps *. (1.0 +. Float.abs !a +. Float.abs !b) && !i < max_iter do
    Fault.tick ();
    if !f1 <= !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end;
    incr i
  done;
  0.5 *. (!a +. !b)

let minimize_convex_sum ~n ~f ~total ?(eps = 1e-10) ?(max_iter = 200) () =
  Fault.enter "convex.minimize";
  if n <= 0 then invalid_arg "Convex.minimize_convex_sum: n <= 0";
  if total < 0.0 then invalid_arg "Convex.minimize_convex_sum: negative total";
  if total = 0.0 then Array.make n 0.0
  else begin
    let h = 1e-7 *. (1.0 +. total) in
    let slope i x =
      if x <= h then (f i (x +. h) -. f i x) /. h else (f i (x +. h) -. f i (x -. h)) /. (2.0 *. h)
    in
    (* For a target marginal cost mu, each coordinate takes
       x_i(mu) = argmin f_i(x) - mu*x on [0, total]; sum is monotone in mu. *)
    let alloc_for mu =
      Array.init n (fun i ->
          (* find x with slope i x = mu by bisection on [0, total] *)
          if slope i 0.0 >= mu then 0.0
          else if slope i total <= mu then total
          else
            Rootfind.bisect ~f:(fun x -> slope i x -. mu) ~lo:0.0 ~hi:total ~eps:(eps /. 10.0) ())
    in
    let sum_for mu = Array.fold_left ( +. ) 0.0 (alloc_for mu) in
    (* bracket mu *)
    let mu_lo = ref (-1.0) and mu_hi = ref 1.0 in
    let i = ref 0 in
    while sum_for !mu_lo > total && !i < 60 do
      Fault.tick ();
      mu_lo := !mu_lo *. 2.0;
      incr i
    done;
    let i = ref 0 in
    while sum_for !mu_hi < total && !i < 60 do
      Fault.tick ();
      mu_hi := !mu_hi *. 2.0;
      incr i
    done;
    let mu =
      Rootfind.bisect ~f:(fun mu -> sum_for mu -. total) ~lo:!mu_lo ~hi:!mu_hi ~eps ~max_iter ()
    in
    let xs = alloc_for mu in
    (* fix rounding so the budget is met exactly *)
    let s = Array.fold_left ( +. ) 0.0 xs in
    if s > 0.0 then Array.map (fun x -> x *. total /. s) xs else Array.make n (total /. float_of_int n)
  end
