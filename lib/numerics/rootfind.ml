exception No_bracket of { lo : float; hi : float; f_lo : float; f_hi : float }
exception No_convergence of { iters : int; residual : float }

(* iteration counters are batched: one [Obs.add] per solver call, so
   the per-iteration cost of instrumentation is zero *)
let c_bisect = Obs.counter "rootfind.bisect_iters"
let c_brent = Obs.counter "rootfind.brent_iters"
let c_newton = Obs.counter "rootfind.newton_iters"
let c_bracket = Obs.counter "rootfind.bracket_steps"
let c_calls = Obs.counter "rootfind.calls"

let default_eps = 1e-12

let opposite fa fb = (fa <= 0.0 && fb >= 0.0) || (fa >= 0.0 && fb <= 0.0)

let bisect ~f ~lo ~hi ?(eps = default_eps) ?(max_iter = 200) () =
  Fault.enter "rootfind.bisect";
  let eps = eps *. Fault.tol_scale () in
  let max_iter = Fault.cap_iters max_iter in
  let fa = f lo and fb = f hi in
  if not (opposite fa fb) then raise (No_bracket { lo; hi; f_lo = fa; f_hi = fb });
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else begin
    let lo = ref lo and hi = ref hi and fa = ref fa in
    let i = ref 0 in
    let width () = !hi -. !lo in
    let tol () = eps *. (1.0 +. Float.abs !lo +. Float.abs !hi) in
    while width () > tol () && !i < max_iter do
      Fault.tick ();
      let mid = 0.5 *. (!lo +. !hi) in
      let fm = f mid in
      if fm = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if (fm < 0.0) = (!fa < 0.0) then begin
        lo := mid;
        fa := fm
      end
      else hi := mid;
      incr i
    done;
    Obs.incr c_calls;
    Obs.add c_bisect !i;
    let mid = 0.5 *. (!lo +. !hi) in
    if width () > tol () then raise (No_convergence { iters = !i; residual = Float.abs (f mid) });
    Fault.observe_float "rootfind.bisect" mid
  end

let brent ~f ~lo ~hi ?flo ?fhi ?(eps = default_eps) ?(max_iter = 200) () =
  Fault.enter "rootfind.brent";
  let eps = eps *. Fault.tol_scale () in
  let max_iter = Fault.cap_iters max_iter in
  let a = ref lo and b = ref hi in
  let endpoint pre x = match pre with Some v -> v | None -> f x in
  let fa = ref (endpoint flo !a) and fb = ref (endpoint fhi !b) in
  if not (opposite !fa !fb) then raise (No_bracket { lo; hi; f_lo = !fa; f_hi = !fb });
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in
    a := !b;
    b := t;
    let t = !fa in
    fa := !fb;
    fb := t
  end;
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) in
  let mflag = ref true in
  let iter = ref 0 in
  let converged () = !fb = 0.0 || Float.abs (!b -. !a) <= eps *. (1.0 +. Float.abs !b) in
  while (not (converged ())) && !iter < max_iter do
    Fault.tick ();
    let s =
      if !fa <> !fc && !fb <> !fc then
        (* inverse quadratic interpolation *)
        (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
        +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
        +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
      else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
    in
    let lo_bound = (3.0 *. !a +. !b) /. 4.0 in
    let in_range = s > Float.min lo_bound !b && s < Float.max lo_bound !b in
    let cond_bisect =
      (not in_range)
      || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
      || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0)
      || (!mflag && Float.abs (!b -. !c) < eps)
      || ((not !mflag) && Float.abs (!c -. !d) < eps)
    in
    let s = if cond_bisect then 0.5 *. (!a +. !b) else s in
    mflag := cond_bisect;
    let fs = f s in
    d := !c;
    c := !b;
    fc := !fb;
    if opposite !fa fs then begin
      b := s;
      fb := fs
    end
    else begin
      a := s;
      fa := fs
    end;
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    incr iter
  done;
  Obs.incr c_calls;
  Obs.add c_brent !iter;
  if not (converged ()) then raise (No_convergence { iters = !iter; residual = Float.abs !fb });
  Fault.observe_float "rootfind.brent" !b

let newton ~f ~df ~x0 ?(eps = default_eps) ?(max_iter = 100) () =
  let max_iter = Fault.cap_iters max_iter in
  let eps = eps *. Fault.tol_scale () in
  let steps = ref 0 in
  let rec go x i =
    steps := i;
    Fault.tick ();
    let fx = f x in
    if i >= max_iter then raise (No_convergence { iters = i; residual = Float.abs fx })
    else if Float.abs fx = 0.0 then x
    else begin
      let d = df x in
      if d = 0.0 || not (Float.is_finite d) then
        raise (No_convergence { iters = i; residual = Float.abs fx })
      else begin
        let x' = x -. (fx /. d) in
        if not (Float.is_finite x') then raise (No_convergence { iters = i; residual = Float.abs fx })
        else if Float.abs (x' -. x) <= eps *. (1.0 +. Float.abs x') then x'
        else go x' (i + 1)
      end
    end
  in
  let root = go x0 0 in
  Obs.incr c_calls;
  Obs.add c_newton !steps;
  root

(* Safeguarded Newton on a bracket, for a DECREASING function whose
   derivative falls out of the same evaluation loop as the value (the
   Flow kernel's pinned-run windows: value and derivative share every
   [**], so one fused evaluation costs what a plain one does).  The
   caller guarantees f lo >= 0 >= f hi without those endpoints being
   (re-)evaluated here; every evaluated point tightens the bracket, and
   any Newton step that leaves it — or meets a flat or non-finite
   derivative — is replaced by bisection, so convergence never depends
   on the initial guess being good.  State lives in one flat all-float
   record: an iteration allocates nothing. *)
type newton_state = { mutable x : float; mutable blo : float; mutable bhi : float }

let newton_bracketed ~f_df ~lo ~hi ?x0 ?(eps = default_eps) ?(max_iter = 200) () =
  Fault.enter "rootfind.newton_bracketed";
  let eps = eps *. Fault.tol_scale () in
  let max_iter = Fault.cap_iters max_iter in
  let st = { x = (match x0 with Some x -> x | None -> 0.5 *. (lo +. hi)); blo = lo; bhi = hi } in
  if not (st.x > lo && st.x < hi) then st.x <- 0.5 *. (lo +. hi);
  let iter = ref 0 in
  let finished = ref false in
  while (not !finished) && !iter < max_iter do
    Fault.tick ();
    let fx, dx = f_df st.x in
    if fx = 0.0 then finished := true
    else begin
      if fx > 0.0 then st.blo <- st.x else st.bhi <- st.x;
      let step = fx /. dx in
      let x' = st.x -. step in
      let x' =
        if Float.is_finite x' && x' > st.blo && x' < st.bhi then x'
        else 0.5 *. (st.blo +. st.bhi)
      in
      if Float.abs (x' -. st.x) <= eps *. (1.0 +. Float.abs x') then begin
        st.x <- x';
        finished := true
      end
      else st.x <- x'
    end;
    incr iter
  done;
  Obs.incr c_calls;
  Obs.add c_newton !iter;
  if not !finished then raise (No_convergence { iters = !iter; residual = st.bhi -. st.blo });
  Fault.observe_float "rootfind.newton_bracketed" st.x

let bracket_outward ~f ~lo ~hi ?(grow = 1.6) ?(max_iter = 60) () =
  if lo >= hi then raise (No_bracket { lo; hi; f_lo = Float.nan; f_hi = Float.nan });
  let max_iter = Fault.cap_iters max_iter in
  let lo = ref lo and hi = ref hi in
  let fa = ref (f !lo) and fb = ref (f !hi) in
  let i = ref 0 in
  while (not (opposite !fa !fb)) && !i < max_iter do
    Fault.tick ();
    let width = !hi -. !lo in
    if Float.abs !fa < Float.abs !fb then begin
      lo := !lo -. (grow *. width);
      fa := f !lo
    end
    else begin
      hi := !hi +. (grow *. width);
      fb := f !hi
    end;
    incr i
  done;
  Obs.add c_bracket !i;
  if opposite !fa !fb then (!lo, !hi)
  else raise (No_bracket { lo = !lo; hi = !hi; f_lo = !fa; f_hi = !fb })

let find_root ~f ~lo ~hi ?(eps = default_eps) () =
  let lo, hi = if opposite (f lo) (f hi) then (lo, hi) else bracket_outward ~f ~lo ~hi () in
  brent ~f ~lo ~hi ~eps ()
