(** Directed acyclic task graphs — the precedence-constraint model of
    the related work on power-aware makespan (Pruhs, van Stee and
    Uthaisombut): tasks all released at time 0, a task may start only
    after all its predecessors complete.

    Unlike {!Instance.t} jobs, DAG tasks carry no release times —
    readiness is purely structural.  Consumed by the [Precedence]
    heuristics and bounds. *)

type t
(** Invariant: the edge relation is acyclic, all works positive and
    finite.  Tasks are identified by index [0 .. n−1]. *)

val create : works:float array -> edges:(int * int) list -> t
(** [create ~works ~edges] with an edge [(u, v)] meaning [u] precedes
    [v].
    @param works per-task work; [works.(i)] belongs to task [i].
    @raise Invalid_argument on non-positive work, out-of-range
    endpoints, self-loops, or cycles. *)

val chain : float array -> t
(** [chain works] is the linear chain: task [i] precedes task [i+1].
    Its {!critical_path_work} equals its {!total_work}. *)

val independent : float array -> t
(** No edges at all — the degenerate case where precedence-aware
    scheduling reduces to the batch problem. *)

val random : seed:int -> n:int -> layers:int -> edge_prob:float -> work_range:float * float -> t
(** Layered random DAG: tasks split into [layers] ranks; each pair in
    adjacent ranks is connected with probability [edge_prob].
    Deterministic in [seed].
    @param work_range works drawn uniformly from [[lo, hi]]. *)

val n : t -> int
(** Number of tasks. *)

val work : t -> int -> float
(** [work t i] is task [i]'s work.
    @raise Invalid_argument if [i] is out of range. *)

val total_work : t -> float
(** Sum of all task works — the numerator of the average-load lower
    bound. *)

val preds : t -> int -> int list
(** Direct predecessors of a task (not the transitive closure). *)

val succs : t -> int -> int list
(** Direct successors of a task. *)

val edges : t -> (int * int) list
(** All edges, as given to {!create} (deduplicated). *)

val topological_order : t -> int list
(** A topological order (stable: by index among ready tasks).  Every
    task appears exactly once, after all its {!preds}. *)

val critical_path_work : t -> float
(** Maximum total work along any path — the chain that bounds every
    schedule regardless of processor count. *)

val longest_path_to : t -> float array
(** Per task: work of the heaviest path ending at (and including) it.
    [critical_path_work t] is the maximum over this array. *)
