(** Synthetic workload generation.

    The paper has no trace-driven evaluation (its experiments are worked
    instances), but exercising the algorithms at scale — and the online /
    simulator extensions — needs realistic arrival patterns.  All
    generators are deterministic in the [seed]: the same arguments
    always produce the same {!Instance.t}, which is what makes the
    benchmark sections and EXPERIMENTS.md reproducible. *)

(** Arrival-time processes for {!releases}. *)
type arrival =
  | Immediate  (** all jobs released at time 0 (the Theorem 11 setting) *)
  | Poisson of float  (** exponential inter-arrival times with the given rate *)
  | Uniform_span of float  (** releases drawn uniformly in [[0, span]] *)
  | Bursty of { bursts : int; span : float; jitter : float }
      (** [bursts] release points spread over [[0, span]], each job lands
          on one of them plus uniform jitter *)
  | Staircase of float  (** job [i] released at [i · step]: maximally
          block-structured input for IncMerge *)

val releases : seed:int -> arrival -> int -> float array
(** [releases ~seed arrival n] is [n] release times, sorted
    increasing, all [>= 0.]. *)

val equal_work : seed:int -> n:int -> work:float -> arrival -> Instance.t
(** [n] jobs of identical [work] — the hypothesis of the paper's flow
    results ({!Instance.is_equal_work} holds by construction). *)

val uniform_work : seed:int -> n:int -> lo:float -> hi:float -> arrival -> Instance.t
(** Works drawn uniformly from [[lo, hi]].
    @raise Invalid_argument unless [0. < lo <= hi]. *)

val heavy_tailed : seed:int -> n:int -> shape:float -> scale:float -> arrival -> Instance.t
(** Pareto(shape, scale) works: a few huge jobs among many small ones —
    stress input for the block structure of [Incmerge].
    @raise Invalid_argument unless [shape > 0] and [scale > 0]. *)

val partition_style : seed:int -> n:int -> max_value:int -> Instance.t
(** Integer works in [[1, max_value]], all released at 0 — the shape of
    instances produced by the Theorem 11 reduction (see [Hardness] and
    [Partition_solver]). *)

val deadline_jobs :
  seed:int -> n:int -> work:float * float -> slack:float * float -> arrival -> (float * float * float) list
(** [(release, deadline, work)] triples for the Yao–Demers–Shenker
    substrate ([Yds], [Avr], [Optimal_available]); each deadline is
    release + work-scaled slack drawn from the [slack] range.
    @param work range [(lo, hi)] for uniform work draws.
    @param slack range [(lo, hi)] for the per-unit-work slack. *)
