(** Synthetic workload generation.

    The paper has no trace-driven evaluation (its experiments are worked
    instances), but exercising the algorithms at scale — and the online /
    simulator extensions — needs realistic arrival patterns.  All
    generators are deterministic in the [seed]: the same arguments
    always produce the same {!Instance.t}, which is what makes the
    benchmark sections and EXPERIMENTS.md reproducible.

    Two layers coexist here.  The original array-returning generators
    ([equal_work], [heavy_tailed], …) materialize an {!Instance.t} and
    are locked byte-identical across releases (CLI goldens depend on
    their exact [Random.State] draw order).  {!Stream} is the
    trace-scale layer: a pull-based job source seeded via the SplitMix64
    {!Rng}, able to describe 10^6–10^7-job traces that are replayed on
    demand rather than held resident.  The array generators are rebased
    on the stream machinery ({!Stream.of_array} → {!Stream.to_instance})
    so both layers share one materialization path. *)

(** Arrival-time processes for {!releases}. *)
type arrival =
  | Immediate  (** all jobs released at time 0 (the Theorem 11 setting) *)
  | Poisson of float  (** exponential inter-arrival times with the given rate *)
  | Uniform_span of float  (** releases drawn uniformly in [[0, span]] *)
  | Bursty of { bursts : int; span : float; jitter : float }
      (** [bursts] release points spread over [[0, span]], each job lands
          on one of them plus uniform jitter *)
  | Staircase of float  (** job [i] released at [i · step]: maximally
          block-structured input for IncMerge *)

val releases : seed:int -> arrival -> int -> float array
(** [releases ~seed arrival n] is [n] release times, sorted
    increasing, all [>= 0.]. *)

(** Pull-based job sources for trace-scale simulation.

    A stream produces jobs one at a time in nondecreasing release
    order; nothing upstream of the consumer is retained, so a 10^7-job
    trace costs the same live memory as a 10-job one.  Streams are
    deterministic in their seed (SplitMix64 via {!Rng}): two streams
    built with the same arguments yield the same jobs, which is what
    makes long traces replayable without being resident. *)
module Stream : sig
  type t

  (** Per-job work distributions. *)
  type size =
    | Fixed_size of float
    | Uniform_size of { lo : float; hi : float }
    | Pareto of { shape : float; scale : float }
        (** heavy-tailed: a few huge jobs among many small ones *)

  (** Arrival processes.  All produce nondecreasing release times. *)
  type process =
    | Poisson_process of float  (** constant-rate Poisson *)
    | Diurnal of { base : float; amplitude : float; period : float }
        (** sinusoid-modulated Poisson via thinning: instantaneous rate
            [base · (1 + amplitude · sin (2πt/period))], [amplitude] in
            [[0, 1)] *)
    | Mmpp of { rate_on : float; rate_off : float; mean_on : float; mean_off : float }
        (** bursty two-phase Markov-modulated Poisson: exponential
            on/off sojourns with the given means, arrivals at the
            phase's rate ([rate_off] may be [0.]) *)
    | Staircase_process of float  (** job [i] released at [i · step] *)

  val make : seed:int -> ?limit:int -> size:size -> process -> t
  (** [make ~seed ~limit ~size process] draws arrivals and sizes from
      two independent SplitMix64 sub-streams of [seed], stopping after
      [limit] jobs (unbounded when omitted — consumers must impose
      their own horizon).
      @raise Invalid_argument on out-of-range parameters. *)

  val next : t -> Job.t option
  (** Pull the next job; [None] once the stream is exhausted.  Job ids
      count up from 0 in pull order. *)

  val pull_fn : t -> unit -> Job.t option
  (** The stream as a bare pull function. *)

  val of_array : (float * float) array -> t
  (** Finite stream over [(release, work)] pairs, ids in array order. *)

  val of_instance : Instance.t -> t
  (** Replay a materialized instance's jobs in stored order. *)

  val take : t -> int -> Job.t list
  (** At most [n] jobs, consuming the stream. *)

  val fold : ('a -> Job.t -> 'a) -> 'a -> t -> 'a
  (** Consume the stream to exhaustion (diverges on unbounded streams). *)

  val to_instance : t -> Instance.t
  (** Materialize a finite stream.  The shared back end of the array
      generators below. *)

  val with_deadlines : seed:int -> slack:float * float -> t -> unit -> (Job.t * float) option
  (** Decorate each pulled job with a deadline
      [release + work · slack], slack drawn uniformly from the range
      on an independent sub-stream of [seed] — the streaming analogue
      of {!deadline_jobs}.
      @raise Invalid_argument unless [0. < lo <= hi]. *)
end

val equal_work : seed:int -> n:int -> work:float -> arrival -> Instance.t
(** [n] jobs of identical [work] — the hypothesis of the paper's flow
    results ({!Instance.is_equal_work} holds by construction). *)

val uniform_work : seed:int -> n:int -> lo:float -> hi:float -> arrival -> Instance.t
(** Works drawn uniformly from [[lo, hi]].
    @raise Invalid_argument unless [0. < lo <= hi]. *)

val heavy_tailed : seed:int -> n:int -> shape:float -> scale:float -> arrival -> Instance.t
(** Pareto(shape, scale) works: a few huge jobs among many small ones —
    stress input for the block structure of [Incmerge].
    @raise Invalid_argument unless [shape > 0] and [scale > 0]. *)

val partition_style : seed:int -> n:int -> max_value:int -> Instance.t
(** Integer works in [[1, max_value]], all released at 0 — the shape of
    instances produced by the Theorem 11 reduction (see [Hardness] and
    [Partition_solver]). *)

type deadline_arrays = {
  release : float array;
  deadline : float array;
  work : float array;
}
(** Column-major deadline workload: parallel unboxed float arrays,
    consistent with the rest of the generators. *)

val deadline_jobs_arrays :
  seed:int -> n:int -> work:float * float -> slack:float * float -> arrival -> deadline_arrays
(** Release/deadline/work columns for the Yao–Demers–Shenker substrate
    ([Yds], [Avr], [Optimal_available]); each deadline is release +
    work-scaled slack drawn from the [slack] range.  Draw order matches
    the historical {!deadline_jobs} exactly, so both forms agree per
    seed.
    @param work range [(lo, hi)] for uniform work draws.
    @param slack range [(lo, hi)] for the per-unit-work slack. *)

val deadline_jobs :
  seed:int -> n:int -> work:float * float -> slack:float * float -> arrival -> (float * float * float) list
(** Boxed [(release, deadline, work)] view of {!deadline_jobs_arrays},
    kept for existing callers. *)
