type violation =
  | Missing_job of int
  | Unknown_job of int
  | Duplicate_job of int
  | Starts_before_release of int
  | Overlap of { proc : int; job_a : int; job_b : int }
  | Exceeds_budget of { energy : float; budget : float }
  | Nonfinite_entry of { job : int; field : string }

let to_string = function
  | Missing_job id -> Printf.sprintf "job %d from the instance is not scheduled" id
  | Unknown_job id -> Printf.sprintf "scheduled job %d is not in the instance" id
  | Duplicate_job id -> Printf.sprintf "job %d is scheduled more than once" id
  | Starts_before_release id -> Printf.sprintf "job %d starts before its release time" id
  | Overlap { proc; job_a; job_b } ->
    Printf.sprintf "jobs %d and %d overlap on processor %d" job_a job_b proc
  | Exceeds_budget { energy; budget } ->
    Printf.sprintf "schedule uses energy %g > budget %g" energy budget
  | Nonfinite_entry { job; field } ->
    Printf.sprintf "job %d has a non-finite %s" job field

let check inst sched =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let inst_jobs = Instance.jobs inst in
  let by_id = Hashtbl.create 16 in
  Array.iter (fun (j : Job.t) -> Hashtbl.replace by_id j.Job.id j) inst_jobs;
  (* coverage *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Schedule.entry) ->
      let id = e.Schedule.job.Job.id in
      (* NaN slips past every ordering comparison below, so rule it out first *)
      if not (Float.is_finite e.Schedule.start) then add (Nonfinite_entry { job = id; field = "start" });
      if not (Float.is_finite e.Schedule.speed) then add (Nonfinite_entry { job = id; field = "speed" });
      (match Hashtbl.find_opt by_id id with
      | None -> add (Unknown_job id)
      | Some j ->
        if not (Job.equal j e.Schedule.job) then add (Unknown_job id)
        else if e.Schedule.start < j.Job.release -. 1e-9 then add (Starts_before_release id));
      if Hashtbl.mem seen id then add (Duplicate_job id) else Hashtbl.add seen id ())
    (Schedule.entries sched);
  Array.iter
    (fun (j : Job.t) -> if not (Hashtbl.mem seen j.Job.id) then add (Missing_job j.Job.id))
    inst_jobs;
  (* per-processor overlap: entries are sorted by (proc, start) *)
  let rec overlap_scan = function
    | (a : Schedule.entry) :: (b :: _ as rest) ->
      if a.Schedule.proc = b.Schedule.proc && b.Schedule.start < Schedule.completion a -. 1e-9 then
        add (Overlap { proc = a.Schedule.proc; job_a = a.Schedule.job.Job.id; job_b = b.Schedule.job.Job.id });
      overlap_scan rest
    | _ -> ()
  in
  overlap_scan (Schedule.entries sched);
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let check_with_budget model ~budget ?(tol = 1e-6) inst sched =
  let base = match check inst sched with Ok () -> [] | Error vs -> vs in
  let energy = Schedule.energy model sched in
  (* [nan > budget] is false, so a NaN energy would otherwise pass silently *)
  let over = (not (Float.is_finite energy)) || energy > budget *. (1.0 +. tol) in
  let vs = if over then base @ [ Exceeds_budget { energy; budget } ] else base in
  match vs with [] -> Ok () | vs -> Error vs

let is_feasible inst sched = match check inst sched with Ok () -> true | Error _ -> false
