(* Constant-memory online metrics for trace-scale simulation.

   Everything here is O(1) space per statistic, whatever the trace
   length: Welford's recurrence carries exact running mean/variance,
   and the P² algorithm (Jain & Chlamtac, CACM'85) tracks a quantile
   with five markers.  The exact aggregates (count, sum, min, max,
   makespan, energy) agree with [Metrics] over a materialized schedule
   to float rounding; the P² quantiles are estimates and are exact only
   while the observation count is at most five. *)

module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity; sum = 0.0 }

  let clear w =
    w.n <- 0;
    w.mean <- 0.0;
    w.m2 <- 0.0;
    w.min <- Float.infinity;
    w.max <- Float.neg_infinity;
    w.sum <- 0.0

  let add w x =
    w.n <- w.n + 1;
    let d = x -. w.mean in
    w.mean <- w.mean +. (d /. float_of_int w.n);
    (* d uses the pre-update mean, the second factor the post-update
       one: that cross term is what keeps m2 non-negative *)
    w.m2 <- w.m2 +. (d *. (x -. w.mean));
    w.sum <- w.sum +. x;
    if x < w.min then w.min <- x;
    if x > w.max then w.max <- x

  let count w = w.n
  let mean w = if w.n = 0 then 0.0 else w.mean
  let sum w = w.sum
  let variance w = if w.n < 2 then 0.0 else w.m2 /. float_of_int (w.n - 1)
  let stddev w = sqrt (variance w)
  let minimum w = if w.n = 0 then 0.0 else w.min
  let maximum w = if w.n = 0 then 0.0 else w.max
end

module P2 = struct
  (* Five markers track (min, q/2, q, (1+q)/2, max); heights are
     adjusted toward their ideal positions with a piecewise-parabolic
     interpolation, falling back to linear when the parabola would
     cross a neighbour. *)
  type t = {
    q : float;
    heights : float array;  (* marker heights, 5 *)
    pos : float array;  (* actual marker positions, 1-based *)
    want : float array;  (* desired positions *)
    dwant : float array;  (* desired-position increments *)
    mutable n : int;
  }

  let create q =
    if q < 0.0 || q > 1.0 then invalid_arg "Streaming_metrics.P2.create: q outside [0, 1]";
    {
      q;
      heights = Array.make 5 0.0;
      pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      want = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
      dwant = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      n = 0;
    }

  let parabolic t i d =
    let h = t.heights and p = t.pos in
    h.(i)
    +. (d /. (p.(i + 1) -. p.(i - 1))
       *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
          +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1)))))

  let linear t i d =
    let h = t.heights and p = t.pos in
    let j = i + int_of_float d in
    h.(i) +. (d *. (h.(j) -. h.(i)) /. (p.(j) -. p.(i)))

  let add t x =
    t.n <- t.n + 1;
    if t.n <= 5 then begin
      (* bootstrap: insertion-sort the first five observations *)
      t.heights.(t.n - 1) <- x;
      let sub = Array.sub t.heights 0 t.n in
      Array.sort compare sub;
      Array.blit sub 0 t.heights 0 t.n
    end
    else begin
      let h = t.heights and p = t.pos in
      let k =
        if x < h.(0) then begin
          h.(0) <- x;
          0
        end
        else if x >= h.(4) then begin
          h.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= h.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        p.(i) <- p.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.want.(i) <- t.want.(i) +. t.dwant.(i)
      done;
      (* move the three middle markers toward their ideal positions *)
      for i = 1 to 3 do
        let d = t.want.(i) -. p.(i) in
        if
          (d >= 1.0 && p.(i + 1) -. p.(i) > 1.0)
          || (d <= -1.0 && p.(i - 1) -. p.(i) < -1.0)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          let candidate =
            if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate else linear t i d
          in
          h.(i) <- candidate;
          p.(i) <- p.(i) +. d
        end
      done
    end

  let count t = t.n

  let quantile t =
    if t.n = 0 then 0.0
    else if t.n <= 5 then begin
      (* exact quantile over the sorted bootstrap buffer *)
      let k = t.q *. float_of_int (t.n - 1) in
      let i = int_of_float (Float.floor k) in
      let frac = k -. float_of_int i in
      if i + 1 < t.n then t.heights.(i) +. (frac *. (t.heights.(i + 1) -. t.heights.(i)))
      else t.heights.(t.n - 1)
    end
    else t.heights.(2)
end

type t = {
  flow : Welford.t;
  p50 : P2.t;
  p95 : P2.t;
  p99 : P2.t;
  mutable makespan : float;
  mutable energy : float;
  mutable released_work : float;
}

type snapshot = {
  jobs : int;
  flow_mean : float;
  flow_stddev : float;
  flow_max : float;
  flow_total : float;
  flow_p50 : float;
  flow_p95 : float;
  flow_p99 : float;
  makespan : float;
  energy : float;
  released_work : float;
}

let create () =
  {
    flow = Welford.create ();
    p50 = P2.create 0.50;
    p95 = P2.create 0.95;
    p99 = P2.create 0.99;
    makespan = 0.0;
    energy = 0.0;
    released_work = 0.0;
  }

let observe (t : t) ~release ~completion =
  if completion < release then
    invalid_arg "Streaming_metrics.observe: completion precedes release";
  let flow = completion -. release in
  Welford.add t.flow flow;
  P2.add t.p50 flow;
  P2.add t.p95 flow;
  P2.add t.p99 flow;
  if completion > t.makespan then t.makespan <- completion

let add_energy (t : t) e = t.energy <- t.energy +. e
let add_released_work (t : t) w = t.released_work <- t.released_work +. w

let jobs (t : t) = Welford.count t.flow
let total_flow (t : t) = Welford.sum t.flow
let makespan (t : t) = t.makespan
let energy (t : t) = t.energy

let snapshot (t : t) : snapshot =
  {
    jobs = Welford.count t.flow;
    flow_mean = Welford.mean t.flow;
    flow_stddev = Welford.stddev t.flow;
    flow_max = Welford.maximum t.flow;
    flow_total = Welford.sum t.flow;
    flow_p50 = P2.quantile t.p50;
    flow_p95 = P2.quantile t.p95;
    flow_p99 = P2.quantile t.p99;
    makespan = t.makespan;
    energy = t.energy;
    released_work = t.released_work;
  }
