(** A problem instance: a set of jobs, kept sorted by release time.

    All solvers in the library assume this sorted order (the paper's
    Lemma 3 lets optimal schedules run jobs in release order), so the
    constructor enforces it once and for all.  The type is abstract:
    every value of type {!t} satisfies the sortedness invariant, and
    {!jobs} exposes the array without re-checking.

    Instances are produced three ways: directly ({!create},
    {!of_pairs}, {!of_works}), from the paper's worked examples
    ({!figure1}, {!theorem8}), or synthetically via {!Workload}. *)

type t
(** Invariant: jobs sorted by {!Job.compare_by_release}, ids unique,
    every job individually valid per {!Job.make}. *)

val create : Job.t list -> t
(** [create jobs] sorts by release time and re-checks job validity.
    @raise Invalid_argument on duplicate job ids or any job violating
    the {!Job.t} invariants. *)

val of_pairs : (float * float) list -> t
(** [of_pairs [(r0, w0); (r1, w1); ...]] builds jobs from
    [(release, work)] pairs; ids are assigned in input order (so pair
    [i] becomes job id [i], possibly reordered by release). *)

val of_works : float list -> t
(** [of_works ws] is jobs with the given works, all released at time 0
    (the Theorem 11 / Partition setting, see [Hardness]). *)

val figure1 : t
(** The instance behind the paper's Figures 1–3:
    [r = (0, 5, 6)], [w = (5, 2, 1)].  Used throughout the tests, the
    benchmark harness and EXPERIMENTS.md as the canonical worked
    example. *)

val theorem8 : t
(** The Theorem 8 instance: three unit-work jobs released at
    [0, 0, 1], whose flow-optimal speeds are non-algebraic. *)

val jobs : t -> Job.t array
(** The jobs sorted by release time.  The array is the instance's own
    storage — do not mutate. *)

val job : t -> int -> Job.t
(** [job t i] is the [i]-th job in release order (0-based).
    @raise Invalid_argument if [i] is out of range. *)

val n : t -> int
(** Number of jobs. *)

val total_work : t -> float
(** Sum of {!Job.t.work} over all jobs. *)

val first_release : t -> float
(** Earliest release time.
    @raise Invalid_argument on an empty instance. *)

val last_release : t -> float
(** Latest release time.
    @raise Invalid_argument on an empty instance. *)

val is_equal_work : ?tol:float -> t -> bool
(** Whether all works are equal within relative tolerance [tol]
    (default [1e-9]) — the hypothesis of the paper's flow results
    (Sections 3–5). *)

val has_common_release : ?tol:float -> t -> bool
(** Whether all releases coincide within [tol] (default [1e-9]) — the
    batch setting of Theorem 11. *)

val is_empty : t -> bool

val pp : Format.formatter -> t -> unit
(** One line per job, in release order, using {!Job.pp}. *)
