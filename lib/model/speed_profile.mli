(** Piecewise-constant speed functions of time.

    The model's processor speed is an arbitrary function of time whose
    integral is completed work; every algorithm in this library emits
    piecewise-constant profiles (justified by Lemma 2: optimal schedules
    run each job at one speed), so this representation is lossless.

    Profiles come from {!Schedule.profile_of_proc} or directly from
    {!of_segments}, and feed {!energy}, the thermal model ([Thermal])
    and the simulator's processor replay. *)

type segment = { t0 : float; t1 : float; speed : float }
(** Constant speed [speed] on the half-open interval [[t0, t1)].
    Invariants (checked by {!of_segments}): [t0 <= t1],
    [speed >= 0.], all fields finite. *)

type t
(** Invariant: segments sorted by start time and pairwise
    non-overlapping.  Gaps are implicit idle time (speed 0). *)

val empty : t
(** The profile with no segments: speed 0 everywhere, zero work and
    energy. *)

val of_segments : segment list -> t
(** [of_segments segs] sorts by start time and validates.
    @raise Invalid_argument when segments have [t1 < t0], negative
    speed, or overlap. *)

val segments : t -> segment list
(** In time order. *)

val speed_at : t -> float -> float
(** [speed_at t x] is the speed at time [x] (0 outside all segments;
    at a shared boundary the later segment wins). *)

val work : t -> float
(** Total work = integral of speed over time. *)

val work_between : t -> float -> float -> float
(** [work_between t a b] is the work completed in the window
    [[a, b]]; 0 when [b <= a]. *)

val energy : Power_model.t -> t -> float
(** Integral of power over time: sum over segments of
    [P(speed) · (t1 − t0)] under the given power model. *)

val duration : t -> float
(** Total busy time (sum of segment lengths), excluding idle gaps. *)

val span : t -> (float * float) option
(** Earliest start and latest end, [None] when empty. *)

val append : t -> segment -> t
(** [append t seg] adds a segment that must start no earlier than the
    current end — an O(1) builder for simulators emitting segments in
    time order.
    @raise Invalid_argument when [seg] starts before the current
    end or violates the {!segment} invariants. *)

val pp : Format.formatter -> t -> unit
(** Prints segments as [[t0, t1)@speed], space-separated. *)
