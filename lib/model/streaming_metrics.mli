(** Constant-memory online metrics for trace-scale simulation.

    [Metrics] computes makespan/flow aggregates from a fully
    materialized {!Schedule.t}; at 10^6–10^7 simulated jobs there is no
    schedule to materialize.  This module carries the same aggregates
    as O(1)-space running state: Welford's recurrence for exact
    mean/variance of flow, the P² algorithm for streaming quantile
    estimates, and plain accumulators for makespan, energy and released
    work.  Everything except the P² quantiles agrees with the exact
    list-based computation to float rounding. *)

(** Exact running mean/variance/min/max/sum (Welford's algorithm). *)
module Welford : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 before any observation. *)

  val sum : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val minimum : t -> float
  val maximum : t -> float
end

(** Streaming quantile estimation with five markers (Jain & Chlamtac's
    P² algorithm).  Exact while the observation count is at most five;
    an O(1)-space estimate afterwards. *)
module P2 : sig
  type t

  val create : float -> t
  (** [create q] tracks the [q]-quantile.
      @raise Invalid_argument when [q] is outside [[0, 1]]. *)

  val add : t -> float -> unit
  val count : t -> int
  val quantile : t -> float
  (** Current estimate; 0 before any observation. *)
end

type t
(** Aggregate simulation metrics: flow statistics (Welford + P² at
    0.50/0.95/0.99), running makespan, energy, released work. *)

type snapshot = {
  jobs : int;
  flow_mean : float;
  flow_stddev : float;
  flow_max : float;
  flow_total : float;
  flow_p50 : float;  (** P² estimate *)
  flow_p95 : float;  (** P² estimate *)
  flow_p99 : float;  (** P² estimate *)
  makespan : float;
  energy : float;
  released_work : float;
}

val create : unit -> t

val observe : t -> release:float -> completion:float -> unit
(** Record one completed job: feeds flow [completion - release] into
    the running statistics and advances the makespan.
    @raise Invalid_argument when [completion < release]. *)

val add_energy : t -> float -> unit
val add_released_work : t -> float -> unit

val jobs : t -> int
val total_flow : t -> float
val makespan : t -> float
val energy : t -> float

val snapshot : t -> snapshot
(** O(1) copy of the current state — the watermark payload. *)
