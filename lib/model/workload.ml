type arrival =
  | Immediate
  | Poisson of float
  | Uniform_span of float
  | Bursty of { bursts : int; span : float; jitter : float }
  | Staircase of float

let releases ~seed arrival n =
  if n < 0 then invalid_arg "Workload.releases: negative n";
  let st = Random.State.make [| seed; 0x5c4ed |] in
  let rs =
    match arrival with
    | Immediate -> Array.make n 0.0
    | Poisson rate ->
      if rate <= 0.0 then invalid_arg "Workload.releases: rate <= 0";
      let t = ref 0.0 in
      Array.init n (fun _ ->
          let u = Random.State.float st 1.0 in
          t := !t +. (-.Float.log (1.0 -. u) /. rate);
          !t)
    | Uniform_span span ->
      if span < 0.0 then invalid_arg "Workload.releases: span < 0";
      Array.init n (fun _ -> Random.State.float st span)
    | Bursty { bursts; span; jitter } ->
      if bursts <= 0 then invalid_arg "Workload.releases: bursts <= 0";
      let points = Array.init bursts (fun i -> span *. float_of_int i /. float_of_int bursts) in
      Array.init n (fun _ ->
          points.(Random.State.int st bursts) +. Random.State.float st (Float.max jitter 1e-12))
    | Staircase step ->
      if step < 0.0 then invalid_arg "Workload.releases: step < 0";
      Array.init n (fun i -> float_of_int i *. step)
  in
  Array.sort compare rs;
  rs

(* ---------- the pull-based job source ---------- *)

module Stream = struct
  type t = { mutable produced : int; pull : t -> Job.t option }

  let next s = s.pull s

  type size =
    | Fixed_size of float
    | Uniform_size of { lo : float; hi : float }
    | Pareto of { shape : float; scale : float }

  type process =
    | Poisson_process of float
    | Diurnal of { base : float; amplitude : float; period : float }
    | Mmpp of { rate_on : float; rate_off : float; mean_on : float; mean_off : float }
    | Staircase_process of float

  let check_size = function
    | Fixed_size w -> if w <= 0.0 then invalid_arg "Workload.Stream: fixed work <= 0"
    | Uniform_size { lo; hi } ->
      if lo <= 0.0 || hi < lo then invalid_arg "Workload.Stream: need 0 < lo <= hi"
    | Pareto { shape; scale } ->
      if shape <= 0.0 || scale <= 0.0 then
        invalid_arg "Workload.Stream: need positive shape/scale"

  let check_process = function
    | Poisson_process rate ->
      if rate <= 0.0 then invalid_arg "Workload.Stream: rate <= 0"
    | Diurnal { base; amplitude; period } ->
      if base <= 0.0 then invalid_arg "Workload.Stream: base rate <= 0";
      if amplitude < 0.0 || amplitude >= 1.0 then
        invalid_arg "Workload.Stream: amplitude outside [0, 1)";
      if period <= 0.0 then invalid_arg "Workload.Stream: period <= 0"
    | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      if rate_on <= 0.0 then invalid_arg "Workload.Stream: rate_on <= 0";
      if rate_off < 0.0 then invalid_arg "Workload.Stream: rate_off < 0";
      if mean_on <= 0.0 || mean_off <= 0.0 then
        invalid_arg "Workload.Stream: phase means must be positive"
    | Staircase_process step ->
      if step < 0.0 then invalid_arg "Workload.Stream: step < 0"

  let draw_size rng = function
    | Fixed_size w -> w
    | Uniform_size { lo; hi } -> lo +. Rng.float rng (hi -. lo)
    | Pareto { shape; scale } ->
      let u = 1.0 -. Rng.float rng 1.0 in
      scale /. (u ** (1.0 /. shape))

  (* exponential inter-event time; the 1-u transform keeps log's
     argument in (0, 1] *)
  let draw_exp rng rate = -.Float.log (1.0 -. Rng.float rng 1.0) /. rate

  let make ~seed ?limit ~size process =
    check_size size;
    check_process process;
    (match limit with
    | Some n when n < 0 -> invalid_arg "Workload.Stream.make: negative limit"
    | _ -> ());
    (* independent sub-streams: inserting a draw into the arrival
       process never perturbs the size sequence, and vice versa *)
    let arr_rng = Rng.of_pair seed 0 in
    let size_rng = Rng.of_pair seed 1 in
    let now = ref 0.0 in
    let next_release =
      match process with
      | Poisson_process rate ->
        fun () ->
          now := !now +. draw_exp arr_rng rate;
          !now
      | Diurnal { base; amplitude; period } ->
        (* sinusoid-modulated Poisson by thinning: candidates arrive at
           the peak rate and survive with probability rate(t)/peak *)
        let peak = base *. (1.0 +. amplitude) in
        let two_pi = 8.0 *. Float.atan 1.0 in
        let rec candidate () =
          now := !now +. draw_exp arr_rng peak;
          let rate = base *. (1.0 +. (amplitude *. Float.sin (two_pi *. !now /. period))) in
          if Rng.float arr_rng 1.0 *. peak <= rate then !now else candidate ()
        in
        candidate
      | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
        (* two-phase Markov-modulated Poisson: exponential on/off
           sojourns, arrivals at the phase's rate (rate_off may be 0) *)
        let on = ref true in
        let phase_end = ref (draw_exp arr_rng (1.0 /. mean_on)) in
        let rec arrival () =
          let rate = if !on then rate_on else rate_off in
          let gap = if rate > 0.0 then draw_exp arr_rng rate else Float.infinity in
          if !now +. gap <= !phase_end then begin
            now := !now +. gap;
            !now
          end
          else begin
            now := !phase_end;
            on := not !on;
            let mean = if !on then mean_on else mean_off in
            phase_end := !now +. draw_exp arr_rng (1.0 /. mean);
            arrival ()
          end
        in
        arrival
      | Staircase_process step ->
        let k = ref (-1) in
        fun () ->
          incr k;
          float_of_int !k *. step
    in
    let pull s =
      match limit with
      | Some n when s.produced >= n -> None
      | _ ->
        let release = next_release () in
        let work = draw_size size_rng size in
        let j = Job.make ~id:s.produced ~release ~work in
        s.produced <- s.produced + 1;
        Some j
    in
    { produced = 0; pull }

  let of_array pairs =
    let pull s =
      if s.produced >= Array.length pairs then None
      else begin
        let r, w = pairs.(s.produced) in
        let j = Job.make ~id:s.produced ~release:r ~work:w in
        s.produced <- s.produced + 1;
        Some j
      end
    in
    { produced = 0; pull }

  let of_instance inst =
    let jobs = Instance.jobs inst in
    let pull s =
      if s.produced >= Array.length jobs then None
      else begin
        let j = jobs.(s.produced) in
        s.produced <- s.produced + 1;
        Some j
      end
    in
    { produced = 0; pull }

  let pull_fn s () = next s

  let take s n =
    let rec go acc k = if k = 0 then List.rev acc else
      match next s with None -> List.rev acc | Some j -> go (j :: acc) (k - 1)
    in
    go [] n

  let fold f init s =
    let rec go acc = match next s with None -> acc | Some j -> go (f acc j) in
    go init

  let to_instance s =
    Instance.create (List.rev (fold (fun acc j -> j :: acc) [] s))

  let with_deadlines ~seed ~slack:(slo, shi) s =
    if slo <= 0.0 || shi < slo then invalid_arg "Workload.Stream.with_deadlines: bad slack range";
    let rng = Rng.of_pair seed 2 in
    fun () ->
      match next s with
      | None -> None
      | Some j ->
        let slack = slo +. Rng.float rng (shi -. slo) in
        Some (j, j.Job.release +. (j.Job.work *. slack))
end

(* The array-returning generators draw exactly as they always have
   (Random.State, releases first, works second) and materialize through
   the one shared Stream path, so their output is byte-identical to the
   pre-streaming versions while exercising the same pull machinery the
   trace simulator consumes. *)

let build ~seed arrival n work_of =
  let rs = releases ~seed arrival n in
  Stream.to_instance (Stream.of_array (Array.mapi (fun i r -> (r, work_of i)) rs))

let equal_work ~seed ~n ~work arrival =
  if work <= 0.0 then invalid_arg "Workload.equal_work: work <= 0";
  build ~seed arrival n (fun _ -> work)

let uniform_work ~seed ~n ~lo ~hi arrival =
  if lo <= 0.0 || hi < lo then invalid_arg "Workload.uniform_work: need 0 < lo <= hi";
  let st = Random.State.make [| seed; 0xbeef |] in
  let works = Array.init n (fun _ -> lo +. Random.State.float st (hi -. lo)) in
  build ~seed arrival n (fun i -> works.(i))

let heavy_tailed ~seed ~n ~shape ~scale arrival =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Workload.heavy_tailed: need positive shape/scale";
  let st = Random.State.make [| seed; 0xca4e |] in
  let works =
    Array.init n (fun _ ->
        let u = 1.0 -. Random.State.float st 1.0 in
        scale /. (u ** (1.0 /. shape)))
  in
  build ~seed arrival n (fun i -> works.(i))

let partition_style ~seed ~n ~max_value =
  if max_value <= 0 then invalid_arg "Workload.partition_style: max_value <= 0";
  let st = Random.State.make [| seed; 0x9a47 |] in
  Instance.of_works (List.init n (fun _ -> float_of_int (1 + Random.State.int st max_value)))

type deadline_arrays = {
  release : float array;
  deadline : float array;
  work : float array;
}

let deadline_jobs_arrays ~seed ~n ~work:(wlo, whi) ~slack:(slo, shi) arrival =
  if wlo <= 0.0 || whi < wlo then invalid_arg "Workload.deadline_jobs: bad work range";
  if slo <= 0.0 || shi < slo then invalid_arg "Workload.deadline_jobs: bad slack range";
  let rs = releases ~seed arrival n in
  let st = Random.State.make [| seed; 0xdead |] in
  let dl = Array.make n 0.0 in
  let wk = Array.make n 0.0 in
  Array.iteri
    (fun i r ->
      let w = wlo +. Random.State.float st (whi -. wlo) in
      let s = slo +. Random.State.float st (shi -. slo) in
      dl.(i) <- r +. (w *. s);
      wk.(i) <- w)
    rs;
  { release = rs; deadline = dl; work = wk }

let deadline_jobs ~seed ~n ~work ~slack arrival =
  let a = deadline_jobs_arrays ~seed ~n ~work ~slack arrival in
  List.init n (fun i -> (a.release.(i), a.deadline.(i), a.work.(i)))
