(** Feasibility checking of schedules against instances.

    Every solver output in the test suite goes through [check]; it
    verifies exactly the constraints of the paper's model: jobs start at
    or after release, each processor runs at most one job at a time, and
    every job of the instance appears exactly once (nonpreemptive). *)

type violation =
  | Missing_job of int
  | Unknown_job of int
  | Duplicate_job of int
  | Starts_before_release of int
  | Overlap of { proc : int; job_a : int; job_b : int }
  | Exceeds_budget of { energy : float; budget : float }
  | Nonfinite_entry of { job : int; field : string }
      (** NaN/infinite [start] or [speed]: such values defeat the other
          checks because every ordering comparison with NaN is false *)

val to_string : violation -> string

val check : Instance.t -> Schedule.t -> (unit, violation list) result

val check_with_budget :
  Power_model.t -> budget:float -> ?tol:float -> Instance.t -> Schedule.t -> (unit, violation list) result
(** Additionally requires total energy at most [budget·(1 + tol)]
    (default [tol = 1e-6]); a NaN or infinite total energy is reported
    as {!Exceeds_budget}. *)

val is_feasible : Instance.t -> Schedule.t -> bool
