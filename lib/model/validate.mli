(** Feasibility checking of schedules against instances.

    Every solver output in the test suite goes through {!check}; it
    verifies exactly the constraints of the paper's model: jobs start at
    or after release, each processor runs at most one job at a time, and
    every job of the instance appears exactly once (nonpreemptive).

    This is the independent referee between a {!Schedule.t} and the
    {!Instance.t} it claims to solve — solvers enforce their own
    invariants, but only [Validate] cross-checks the pairing, so tests
    and the fuzzing oracles ([pasched.check]) rely on it rather than on
    solver-internal assertions. *)

type violation =
  | Missing_job of int  (** instance job absent from the schedule *)
  | Unknown_job of int  (** scheduled job not in the instance *)
  | Duplicate_job of int  (** job scheduled more than once *)
  | Starts_before_release of int
      (** entry starts before its job's {!Job.t.release} *)
  | Overlap of { proc : int; job_a : int; job_b : int }
      (** two entries on [proc] overlap in time *)
  | Exceeds_budget of { energy : float; budget : float }
      (** total energy above the budget (only from
          {!check_with_budget}) *)
  | Nonfinite_entry of { job : int; field : string }
      (** NaN/infinite [start] or [speed]: such values defeat the other
          checks because every ordering comparison with NaN is false *)

val to_string : violation -> string
(** Human-readable one-line description of a violation. *)

val check : Instance.t -> Schedule.t -> (unit, violation list) result
(** [check inst s] is [Ok ()] iff [s] is a feasible nonpreemptive
    schedule of [inst].
    @return [Error vs] with {e all} violations found (never an empty
    list), so a test failure names every broken constraint at once. *)

val check_with_budget :
  Power_model.t -> budget:float -> ?tol:float -> Instance.t -> Schedule.t -> (unit, violation list) result
(** [check_with_budget m ~budget inst s] is {!check} plus the energy
    constraint: total energy at most [budget·(1 + tol)].
    @param tol relative slack on the budget (default [1e-6]),
    absorbing the root-finder tolerances of the solvers.
    A NaN or infinite total energy is reported as
    {!constructor:Exceeds_budget}. *)

val is_feasible : Instance.t -> Schedule.t -> bool
(** [is_feasible inst s] is [check inst s = Ok ()]. *)
