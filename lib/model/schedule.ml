type entry = { job : Job.t; proc : int; start : float; speed : float }
type t = entry list (* sorted by (proc, start) *)

let c_entries = Obs.counter "schedule.entries_built"

let duration e = e.job.Job.work /. e.speed
let completion e = e.start +. duration e

let of_entries entries_list =
  Obs.span "schedule.of_entries" @@ fun () ->
  Obs.add c_entries (List.length entries_list);
  List.iter
    (fun e ->
      if e.proc < 0 then invalid_arg "Schedule.of_entries: negative processor index";
      if e.speed <= 0.0 || not (Float.is_finite e.speed) then
        invalid_arg "Schedule.of_entries: speed must be finite and positive";
      if e.start < e.job.Job.release -. 1e-9 then
        invalid_arg "Schedule.of_entries: job starts before its release")
    entries_list;
  List.sort (fun a b -> compare (a.proc, a.start, a.job.Job.id) (b.proc, b.start, b.job.Job.id)) entries_list

let entries t = t
let entries_of_proc t p = List.filter (fun e -> e.proc = p) t
let find t id = List.find_opt (fun e -> e.job.Job.id = id) t
let n_jobs = List.length
let n_procs t = List.fold_left (fun acc e -> Stdlib.max acc (e.proc + 1)) 0 t

let profile_of_proc t p =
  entries_of_proc t p
  |> List.map (fun e -> { Speed_profile.t0 = e.start; t1 = completion e; speed = e.speed })
  |> Speed_profile.of_segments

let energy m t =
  List.fold_left (fun acc e -> acc +. Power_model.energy_run m ~work:e.job.Job.work ~speed:e.speed) 0.0 t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "p%d: %a start=%g speed=%g done=%g@," e.proc Job.pp e.job e.start e.speed
        (completion e))
    t;
  Format.fprintf fmt "@]"
