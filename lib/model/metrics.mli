(** Scheduling metrics.

    The paper optimizes makespan (max completion) and total flow (sum of
    completion − release); it also characterizes the class of *symmetric
    non-decreasing* metrics for which its multiprocessor reduction works.
    We expose that classification so Theorem 10's hypothesis is a
    checkable property here.

    All schedule-level metrics take a {!Schedule.t}; the abstract
    {!metric} form works on raw (completion, release) pairs so the
    classification predicates can probe it on arbitrary data. *)

val makespan : Schedule.t -> float
(** Largest completion time over all entries; 0 for an empty
    schedule.  Minimized by [Incmerge] under an energy budget. *)

val total_flow : Schedule.t -> float
(** Sum over jobs of completion − release.  Minimized by [Flow] for
    equal-work jobs. *)

val max_flow : Schedule.t -> float
(** Largest single-job flow (completion − release); 0 for an empty
    schedule.  Minimized by [Max_flow]. *)

val total_completion : Schedule.t -> float
(** Sum of completion times — equals {!total_flow} plus the sum of
    releases, so the two are interchangeable as objectives. *)

val weighted_flow : weights:(int -> float) -> Schedule.t -> float
(** [weighted_flow ~weights s] is the sum of [weights job_id · flow];
    the paper's example of a metric that is {e not} symmetric (so
    Theorem 10's reduction does not apply to it).
    @param weights mapping from job id to its weight. *)

(** A metric as a function of the (completion, release) pairs, used to
    test symmetry / monotonicity on concrete data. *)
type metric = (float * float) array -> float

val makespan_metric : metric
(** {!makespan} in {!metric} form. *)

val total_flow_metric : metric
(** {!total_flow} in {!metric} form. *)

val is_symmetric_on : metric -> (float * float) array -> bool
(** [is_symmetric_on m data] checks invariance of [m] under
    permutations of the completion times in [data] (deterministic set
    of permutations: rotations and swaps — a sound but incomplete
    check; [true] means "no counterexample found"). *)

val is_non_decreasing_on : metric -> (float * float) array -> bool
(** [is_non_decreasing_on m data] checks that [m] does not decrease
    when any single completion time in [data] increases (finite probe
    set, same caveat as {!is_symmetric_on}). *)
