(** Concrete schedules: each job gets a processor, a start time and a
    single speed (Lemma 2 makes the single-speed form lossless for
    optimal schedules, and two-speed emulations are expressed at the
    simulator level instead).

    A schedule is what solvers return and what {!Metrics},
    {!Validate} and the simulator consume.  It does not reference an
    {!Instance.t}; feasibility of a schedule {e against} an instance
    is a separate judgment made by {!Validate.check}.

    Instrumented: building a schedule records the
    [schedule.entries_built] counter and a [schedule.of_entries] trace
    span when observability is enabled (see [Obs]). *)

type entry = { job : Job.t; proc : int; start : float; speed : float }
(** One contiguous execution: [job] runs on processor [proc] from
    [start] for [job.work /. speed] time units at constant [speed].
    Invariants (checked by {!of_entries}): [proc >= 0],
    [speed > 0.] and finite, [start >= job.release] (up to [1e-9]
    slack). *)

type t
(** Invariant: entries sorted by [(proc, start, job id)]. *)

val of_entries : entry list -> t
(** [of_entries es] validates and sorts the entries.
    @raise Invalid_argument on negative proc, non-positive or
    non-finite speed, or a start before the job's release.  Overlap on
    a processor is {e not} rejected here — it is reported by
    {!Validate.check} (and by {!profile_of_proc}). *)

val entries : t -> entry list
(** In (proc, start) order. *)

val entries_of_proc : t -> int -> entry list
(** The entries assigned to one processor, in start order. *)

val find : t -> int -> entry option
(** [find t id] looks up the entry of job [id], if scheduled. *)

val n_jobs : t -> int
(** Number of entries (for preemption-free schedules, the number of
    scheduled jobs). *)

val n_procs : t -> int
(** 1 + the largest processor index used (0 for an empty schedule). *)

val duration : entry -> float
(** [duration e] is [e.job.work /. e.speed]. *)

val completion : entry -> float
(** [completion e] is [e.start +. duration e]. *)

val profile_of_proc : t -> int -> Speed_profile.t
(** The processor's piecewise-constant speed profile — the bridge to
    time-domain analyses ({!Speed_profile.energy}, [Thermal]).
    @raise Invalid_argument if entries on the processor overlap. *)

val energy : Power_model.t -> t -> float
(** Total energy: sum over entries of the single-speed run energy
    under the given power model. *)

val pp : Format.formatter -> t -> unit
(** One line per entry grouped by processor: job, start, speed,
    completion. *)
