(** Text rendering of schedules: ASCII Gantt charts and TSV export.

    Pure formatting on top of {!Schedule} and {!Metrics} — no solver
    logic.  The [pasched] CLI's [--gantt] flag and the benchmark
    harness are the consumers. *)

val gantt : ?width:int -> Schedule.t -> string
(** [gantt s] draws one row per processor, time flowing right; each
    job drawn with its id (letters a–z then digits, cycling), idle
    drawn as ['.'].
    @param width chart width in characters (default 72); time is
    scaled so the makespan spans the full width. *)

val entries_tsv : Schedule.t -> string
(** Header + one line per entry: job, proc, release, work, start,
    speed, completion, flow.  Tab-separated, suitable for
    spreadsheet import or [gnuplot]. *)

val summary : Power_model.t -> Schedule.t -> string
(** One-line metrics summary: n, makespan ({!Metrics.makespan}),
    total flow ({!Metrics.total_flow}), energy
    ({!Schedule.energy}). *)

val series_tsv : header:string * string -> (float * float) list -> string
(** [series_tsv ~header:(x, y) points] is a two-column TSV for
    plotting (e.g. the Figure 1 energy/makespan curve).
    @param header the two column names. *)
