(** A job in the speed-scaling model: a release time and a work
    requirement.  Processing time is not an input — it is decided by the
    scheduler through the speed it assigns (work / speed).

    Jobs are value types: plain records with structural {!equal}.  They
    are aggregated into {!Instance.t} for the solvers and referenced by
    [id] from {!Schedule.entry}. *)

type t = { id : int; release : float; work : float }
(** Invariants (established by {!make}, assumed everywhere):
    [release >= 0.], [work > 0.], both finite.  [id] is any integer;
    {!Instance.create} additionally requires ids to be unique within an
    instance. *)

val make : id:int -> release:float -> work:float -> t
(** [make ~id ~release ~work] is the job record after validation.
    @param release arrival time; the job may not start earlier
    (enforced by {!Schedule.of_entries} and {!Validate.check}).
    @param work total work to process; at speed [s] it takes
    [work /. s] time units.
    @raise Invalid_argument on negative or non-finite [release], or
    non-positive or non-finite [work]. *)

val equal : t -> t -> bool
(** Structural equality on all three fields. *)

val compare_by_release : t -> t -> int
(** Orders by release time, breaking ties by id (the paper's indexing
    convention [r1 <= r2 <= ...]).  This is the order {!Instance.jobs}
    stores and every solver consumes. *)

val pp : Format.formatter -> t -> unit
(** Prints as [job <id> (r=<release>, w=<work>)]. *)
